//! Instruction representation and convenience constructors.

use std::fmt;

use crate::op::{Opcode, SpecialReg};
use crate::reg::{PredReg, Reg};

/// A source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Operand {
    /// No operand in this slot.
    #[default]
    None,
    /// A 32-bit register (or 64-bit pair base for wide ops).
    Reg(Reg),
    /// A 32-bit immediate (sign-extended where the op is 64-bit).
    Imm(i32),
    /// Constant-bank reference `c[bank][offset]` — how the GPU driver passes
    /// kernel parameters and the stack pointer (paper Fig. 7 reads the stack
    /// top from `c[0x0][0x28]`).
    Const {
        /// Constant bank index (bank 0 holds launch parameters).
        bank: u8,
        /// Byte offset within the bank.
        offset: u16,
    },
}

impl Operand {
    /// Returns the register if this operand is a register.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// Returns `true` if the slot is occupied.
    pub fn is_some(self) -> bool {
        !matches!(self, Operand::None)
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::None => write!(f, "-"),
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v:#x}"),
            Operand::Const { bank, offset } => write!(f, "c[{bank:#x}][{offset:#x}]"),
        }
    }
}

/// Comparison operation encoded in `ISETP`'s third operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Immediate encoding of the comparison.
    pub fn encode(self) -> i32 {
        match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        }
    }

    /// Inverse of [`CmpOp::encode`].
    pub fn decode(v: i32) -> Option<CmpOp> {
        match v {
            0 => Some(CmpOp::Eq),
            1 => Some(CmpOp::Ne),
            2 => Some(CmpOp::Lt),
            3 => Some(CmpOp::Le),
            4 => Some(CmpOp::Gt),
            5 => Some(CmpOp::Ge),
            _ => None,
        }
    }

    /// Evaluates the comparison on signed 64-bit values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Guard predicate on an instruction (`@P0` / `@!P0` prefixes in SASS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// The predicate register tested.
    pub reg: PredReg,
    /// If `true`, the instruction executes when the predicate is *false*.
    pub negated: bool,
}

impl Predicate {
    /// Guard on `reg` being true.
    pub fn when(reg: PredReg) -> Predicate {
        Predicate { reg, negated: false }
    }

    /// Guard on `reg` being false.
    pub fn unless(reg: PredReg) -> Predicate {
        Predicate { reg, negated: true }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "@!{}", self.reg)
        } else {
            write!(f, "@{}", self.reg)
        }
    }
}

/// The two LMI hint bits carried in the reserved microcode field (Fig. 9).
///
/// * `A` (activation, bit 28): the instruction performs pointer handling and
///   its result must be checked by the OCU.
/// * `S` (selection, bit 27): which of the first two source operands holds
///   the incoming pointer value that the OCU compares against the ALU output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HintBits {
    /// Activation bit — `true` if the OCU must check this instruction.
    pub activate: bool,
    /// Selection bit — index (0 or 1) of the source operand holding the
    /// pointer. Only meaningful when `activate` is set.
    pub select: u8,
}

impl HintBits {
    /// No checking required (the default for every instruction).
    pub const NONE: HintBits = HintBits { activate: false, select: 0 };

    /// Marks the instruction for OCU checking against source operand
    /// `operand_index` (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `operand_index > 1` — the S field is a single bit.
    pub fn check_operand(operand_index: u8) -> HintBits {
        assert!(operand_index <= 1, "S bit selects operand 0 or 1");
        HintBits { activate: true, select: operand_index }
    }
}

/// Memory reference of a load/store: `[Rn + offset]` with an access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base address register (64-bit pair base for global/local/heap;
    /// 32-bit offset register for shared/const).
    pub addr: Reg,
    /// Signed byte offset added to the base.
    pub offset: i32,
    /// Access width in bytes (1, 2, 4, or 8).
    pub width: u8,
}

impl MemRef {
    /// A `width`-byte access at `[addr + offset]`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4, or 8.
    pub fn new(addr: Reg, offset: i32, width: u8) -> MemRef {
        assert!(matches!(width, 1 | 2 | 4 | 8), "unsupported access width {width}");
        MemRef { addr, offset, width }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "[{}]", self.addr)
        } else {
            write!(f, "[{}+{:#x}]", self.addr, self.offset)
        }
    }
}

/// A decoded instruction.
///
/// Construct instructions through the typed convenience constructors
/// ([`Instruction::iadd3`], [`Instruction::ldg`], …) rather than by filling
/// fields, so that operand shapes stay valid.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Operation.
    pub opcode: Opcode,
    /// Destination register (or predicate destination index for `ISETP`,
    /// carried in `dst.0`).
    pub dst: Reg,
    /// Source operands (up to three).
    pub srcs: [Operand; 3],
    /// Optional guard predicate.
    pub pred: Option<Predicate>,
    /// Memory reference for load/store opcodes.
    pub mem: Option<MemRef>,
    /// LMI hint bits (reserved-field bits 27/28).
    pub hints: HintBits,
}

impl Instruction {
    fn op3(opcode: Opcode, dst: Reg, a: Operand, b: Operand, c: Operand) -> Instruction {
        Instruction { opcode, dst, srcs: [a, b, c], pred: None, mem: None, hints: HintBits::NONE }
    }

    /// `IADD3 dst, a, b, RZ` — two-input form of the three-input add.
    pub fn iadd3(dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Instruction {
        Self::op3(Opcode::Iadd3, dst, a.into(), b.into(), Operand::Reg(Reg::RZ))
    }

    /// `IMAD dst, a, b, c`.
    pub fn imad(
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Instruction {
        Self::op3(Opcode::Imad, dst, a.into(), b.into(), c.into())
    }

    /// `MOV dst, a`.
    pub fn mov(dst: Reg, a: impl Into<Operand>) -> Instruction {
        Self::op3(Opcode::Mov, dst, a.into(), Operand::None, Operand::None)
    }

    /// `MOV64 dst:dst+1, a:a+1` — move a 64-bit register pair.
    pub fn mov64(dst: Reg, a: Reg) -> Instruction {
        Self::op3(Opcode::Mov64, dst, Operand::Reg(a), Operand::None, Operand::None)
    }

    /// `IADD64 dst:dst+1, a:a+1, b` — 64-bit pointer arithmetic.
    pub fn iadd64(dst: Reg, a: Reg, b: impl Into<Operand>) -> Instruction {
        Self::op3(Opcode::Iadd64, dst, Operand::Reg(a), b.into(), Operand::None)
    }

    /// `LEA64 dst:dst+1, base:base+1, idx, shift`.
    pub fn lea64(dst: Reg, base: Reg, idx: impl Into<Operand>, shift: u8) -> Instruction {
        Self::op3(Opcode::Lea64, dst, Operand::Reg(base), idx.into(), Operand::Imm(shift as i32))
    }

    /// `ISETP pN, a, cmp, b` — `dst.0` names the destination predicate.
    pub fn isetp(
        dst: PredReg,
        a: impl Into<Operand>,
        cmp: CmpOp,
        b: impl Into<Operand>,
    ) -> Instruction {
        Self::op3(Opcode::Isetp, Reg(dst.0), a.into(), b.into(), Operand::Imm(cmp.encode()))
    }

    /// Generic binary integer op (`SHL`, `SHR`, `AND`, `OR`, `XOR`, …).
    pub fn int2(
        opcode: Opcode,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> Instruction {
        Self::op3(opcode, dst, a.into(), b.into(), Operand::None)
    }

    /// Generic binary float op (`FADD`, `FMUL`).
    pub fn float2(
        opcode: Opcode,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> Instruction {
        Self::op3(opcode, dst, a.into(), b.into(), Operand::None)
    }

    /// `FFMA dst, a, b, c`.
    pub fn ffma(
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Instruction {
        Self::op3(Opcode::Ffma, dst, a.into(), b.into(), c.into())
    }

    fn load(opcode: Opcode, dst: Reg, mem: MemRef) -> Instruction {
        Instruction {
            opcode,
            dst,
            srcs: [Operand::None; 3],
            pred: None,
            mem: Some(mem),
            hints: HintBits::NONE,
        }
    }

    fn store(opcode: Opcode, value: Reg, mem: MemRef) -> Instruction {
        Instruction {
            opcode,
            dst: Reg::RZ,
            srcs: [Operand::Reg(value), Operand::None, Operand::None],
            pred: None,
            mem: Some(mem),
            hints: HintBits::NONE,
        }
    }

    /// `LDG dst, [addr+offset]` — global load.
    pub fn ldg(dst: Reg, mem: MemRef) -> Instruction {
        Self::load(Opcode::Ldg, dst, mem)
    }

    /// `STG [addr+offset], value` — global store.
    pub fn stg(mem: MemRef, value: Reg) -> Instruction {
        Self::store(Opcode::Stg, value, mem)
    }

    /// `LDS dst, [addr+offset]` — shared load.
    pub fn lds(dst: Reg, mem: MemRef) -> Instruction {
        Self::load(Opcode::Lds, dst, mem)
    }

    /// `STS [addr+offset], value` — shared store.
    pub fn sts(mem: MemRef, value: Reg) -> Instruction {
        Self::store(Opcode::Sts, value, mem)
    }

    /// `LDL dst, [addr+offset]` — local load.
    pub fn ldl(dst: Reg, mem: MemRef) -> Instruction {
        Self::load(Opcode::Ldl, dst, mem)
    }

    /// `STL [addr+offset], value` — local store.
    pub fn stl(mem: MemRef, value: Reg) -> Instruction {
        Self::store(Opcode::Stl, value, mem)
    }

    /// `LDC dst, c[bank][offset]` — constant load.
    pub fn ldc(dst: Reg, bank: u8, offset: u16, width: u8) -> Instruction {
        let mut ins = Self::load(Opcode::Ldc, dst, MemRef::new(Reg::RZ, offset as i32, width));
        ins.srcs[0] = Operand::Const { bank, offset };
        ins
    }

    /// `MALLOC dst:dst+1, size` — device-heap allocation intrinsic.
    pub fn malloc(dst: Reg, size: impl Into<Operand>) -> Instruction {
        Self::op3(Opcode::Malloc, dst, size.into(), Operand::None, Operand::None)
    }

    /// `FREE ptr:ptr+1` — device-heap free intrinsic.
    pub fn free(ptr: Reg) -> Instruction {
        Self::op3(Opcode::Free, Reg::RZ, Operand::Reg(ptr), Operand::None, Operand::None)
    }

    /// `S2R dst, special` — read a special register.
    pub fn s2r(dst: Reg, special: SpecialReg) -> Instruction {
        Self::op3(
            Opcode::S2r,
            dst,
            Operand::Imm(special.selector() as i32),
            Operand::None,
            Operand::None,
        )
    }

    /// `BRA target` — branch to absolute instruction index `target`.
    pub fn bra(target: i32) -> Instruction {
        Self::op3(Opcode::Bra, Reg::RZ, Operand::Imm(target), Operand::None, Operand::None)
    }

    /// `BAR` — block-wide barrier.
    pub fn bar() -> Instruction {
        Self::op3(Opcode::Bar, Reg::RZ, Operand::None, Operand::None, Operand::None)
    }

    /// `EXIT`.
    pub fn exit() -> Instruction {
        Self::op3(Opcode::Exit, Reg::RZ, Operand::None, Operand::None, Operand::None)
    }

    /// `NOP`.
    pub fn nop() -> Instruction {
        Self::op3(Opcode::Nop, Reg::RZ, Operand::None, Operand::None, Operand::None)
    }

    /// Attaches LMI hint bits.
    ///
    /// # Panics
    ///
    /// Panics if `hints.activate` is set on an opcode outside the integer
    /// ALU — the OCU only exists next to integer ALUs (paper Fig. 10), so
    /// the compiler must never mark other instruction classes.
    pub fn with_hints(mut self, hints: HintBits) -> Instruction {
        assert!(
            !hints.activate || self.opcode.can_carry_hints(),
            "{} cannot carry the activation hint",
            self.opcode
        );
        self.hints = hints;
        self
    }

    /// Attaches a guard predicate.
    pub fn with_pred(mut self, pred: Predicate) -> Instruction {
        self.pred = Some(pred);
        self
    }

    /// Which source-operand slots read a full 64-bit register pair.
    ///
    /// Conventions (shared with the simulator's executor):
    /// * `IADD64` — both register sources are pairs (immediates
    ///   sign-extend), so the pointer can sit in either slot and the S hint
    ///   bit is meaningful;
    /// * `MOV64`, `FREE` — the single source is a pair;
    /// * `LEA64` — the base (slot 0) is a pair, the index is 32-bit;
    /// * everything else reads 32-bit registers.
    pub fn pair_source_slots(&self) -> [bool; 3] {
        match self.opcode {
            Opcode::Iadd64 => [true, true, false],
            Opcode::Mov64 | Opcode::Free | Opcode::Lea64 => [true, false, false],
            _ => [false; 3],
        }
    }

    /// The registers read by this instruction (for scoreboarding),
    /// expanded to individual 32-bit registers.
    pub fn source_regs(&self) -> Vec<Reg> {
        let mut regs = Vec::with_capacity(4);
        let pair_slots = self.pair_source_slots();
        for (i, src) in self.srcs.iter().enumerate() {
            if let Operand::Reg(r) = src {
                if r.is_zero_reg() {
                    continue;
                }
                regs.push(*r);
                if pair_slots[i] && r.is_valid_pair_base() {
                    regs.push(r.pair_high());
                }
            }
        }
        if let Some(mem) = &self.mem {
            // Address registers are 64-bit pairs in every space except
            // constant-bank addressing.
            if !mem.addr.is_zero_reg() {
                regs.push(mem.addr);
                if self.opcode != Opcode::Ldc && mem.addr.is_valid_pair_base() {
                    regs.push(mem.addr.pair_high());
                }
            }
        }
        regs
    }

    /// The registers written by this instruction.
    pub fn dest_regs(&self) -> Vec<Reg> {
        if self.opcode == Opcode::Isetp || self.opcode.is_store() {
            return Vec::new();
        }
        if self.dst.is_zero_reg() {
            return Vec::new();
        }
        let mut regs = vec![self.dst];
        let wide_dest = self.opcode.is_wide()
            || self.opcode == Opcode::Malloc
            || (self.opcode.is_load() && self.mem.map(|m| m.width) == Some(8));
        if wide_dest && self.dst.is_valid_pair_base() {
            regs.push(self.dst.pair_high());
        }
        regs
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = &self.pred {
            write!(f, "{p} ")?;
        }
        write!(f, "{}", self.opcode)?;
        if self.hints.activate {
            write!(f, ".A{}", self.hints.select)?;
        }
        match (&self.mem, self.opcode.is_store()) {
            (Some(mem), false) if self.opcode.is_load() => {
                write!(f, " {}, {mem}", self.dst)?;
            }
            (Some(mem), true) => {
                write!(f, " {mem}, {}", self.srcs[0])?;
            }
            _ if self.opcode == Opcode::Isetp => {
                let cmp = match self.srcs[2] {
                    Operand::Imm(v) => CmpOp::decode(v),
                    _ => None,
                };
                let name = match cmp {
                    Some(CmpOp::Eq) => "EQ",
                    Some(CmpOp::Ne) => "NE",
                    Some(CmpOp::Lt) => "LT",
                    Some(CmpOp::Le) => "LE",
                    Some(CmpOp::Gt) => "GT",
                    Some(CmpOp::Ge) => "GE",
                    None => "??",
                };
                write!(
                    f,
                    " {}, {}, {name}, {}",
                    PredReg(self.dst.0 & 7),
                    self.srcs[0],
                    self.srcs[1]
                )?;
            }
            _ => {
                // Control ops and FREE have no architectural destination.
                let skip_dst = matches!(
                    self.opcode,
                    Opcode::Bra | Opcode::Bar | Opcode::Exit | Opcode::Nop | Opcode::Free
                );
                let mut first = true;
                if !skip_dst {
                    write!(f, " {}", self.dst)?;
                    first = false;
                }
                for src in self.srcs.iter().filter(|s| s.is_some()) {
                    if first {
                        write!(f, " {src}")?;
                        first = false;
                    } else {
                        write!(f, ", {src}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_expected_shapes() {
        let i = Instruction::iadd3(Reg(0), Reg(1), 5);
        assert_eq!(i.opcode, Opcode::Iadd3);
        assert_eq!(i.srcs[0], Operand::Reg(Reg(1)));
        assert_eq!(i.srcs[1], Operand::Imm(5));
        assert_eq!(i.srcs[2], Operand::Reg(Reg::RZ));
    }

    #[test]
    fn hint_on_fpu_panics() {
        let result = std::panic::catch_unwind(|| {
            Instruction::float2(Opcode::Fadd, Reg(0), Reg(1), Reg(2))
                .with_hints(HintBits::check_operand(0))
        });
        assert!(result.is_err());
    }

    #[test]
    fn hint_on_int_alu_is_allowed() {
        let i = Instruction::iadd64(Reg(4), Reg(4), 8).with_hints(HintBits::check_operand(0));
        assert!(i.hints.activate);
        assert_eq!(i.hints.select, 0);
    }

    #[test]
    fn wide_op_reads_full_pair() {
        let i = Instruction::iadd64(Reg(4), Reg(6), Reg(2));
        let srcs = i.source_regs();
        assert!(srcs.contains(&Reg(6)));
        assert!(srcs.contains(&Reg(7)), "pair high of first operand");
        assert!(srcs.contains(&Reg(2)));
        assert!(srcs.contains(&Reg(3)), "register second operand is a pair too");
        let dsts = i.dest_regs();
        assert_eq!(dsts, vec![Reg(4), Reg(5)]);
    }

    #[test]
    fn global_load_reads_address_pair() {
        let i = Instruction::ldg(Reg(8), MemRef::new(Reg(4), 0, 4));
        let srcs = i.source_regs();
        assert!(srcs.contains(&Reg(4)));
        assert!(srcs.contains(&Reg(5)));
        assert_eq!(i.dest_regs(), vec![Reg(8)]);
    }

    #[test]
    fn shared_load_address_is_also_a_pair() {
        let i = Instruction::lds(Reg(8), MemRef::new(Reg(4), 0, 4));
        let srcs = i.source_regs();
        assert!(srcs.contains(&Reg(4)));
        assert!(srcs.contains(&Reg(5)), "shared addresses are full VAs here");
    }

    #[test]
    fn iadd64_reads_both_register_sources_as_pairs() {
        let i = Instruction::iadd64(Reg(8), Reg(4), Reg(6));
        let srcs = i.source_regs();
        assert!(srcs.contains(&Reg(6)) && srcs.contains(&Reg(7)));
        let lea = Instruction::lea64(Reg(8), Reg(4), Reg(6), 2);
        let srcs = lea.source_regs();
        assert!(srcs.contains(&Reg(6)) && !srcs.contains(&Reg(7)), "LEA index is 32-bit");
    }

    #[test]
    fn wide_load_writes_pair() {
        let i = Instruction::ldg(Reg(8), MemRef::new(Reg(4), 0, 8));
        assert_eq!(i.dest_regs(), vec![Reg(8), Reg(9)]);
    }

    #[test]
    fn store_has_no_dest() {
        let i = Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(8));
        assert!(i.dest_regs().is_empty());
        assert!(i.source_regs().contains(&Reg(8)));
    }

    #[test]
    fn malloc_writes_a_pair_and_free_reads_one() {
        let m = Instruction::malloc(Reg(4), Reg(0));
        assert_eq!(m.dest_regs(), vec![Reg(4), Reg(5)]);
        let f = Instruction::free(Reg(4));
        let srcs = f.source_regs();
        assert!(srcs.contains(&Reg(4)) && srcs.contains(&Reg(5)));
        assert!(f.dest_regs().is_empty());
    }

    #[test]
    fn cmp_ops_round_trip_and_eval() {
        for cmp in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(CmpOp::decode(cmp.encode()), Some(cmp));
        }
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
        assert!(CmpOp::Ge.eval(2, 2));
    }

    #[test]
    fn display_is_sass_like() {
        let i = Instruction::iadd64(Reg(4), Reg(4), 16).with_hints(HintBits::check_operand(0));
        assert_eq!(i.to_string(), "IADD64.A0 R4, R4, 0x10");
        let l = Instruction::ldg(Reg(8), MemRef::new(Reg(4), 4, 4));
        assert_eq!(l.to_string(), "LDG R8, [R4+0x4]");
        let s = Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(8));
        assert_eq!(s.to_string(), "STG [R4], R8");
    }

    #[test]
    #[should_panic(expected = "unsupported access width")]
    fn bad_width_rejected() {
        let _ = MemRef::new(Reg(0), 0, 3);
    }
}
