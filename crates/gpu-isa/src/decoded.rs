//! Pre-decoded instruction streams: the launch-time lowering that keeps
//! decode work out of the simulator's per-cycle issue loop.
//!
//! A [`crate::Program`] is a faithful, assembler-friendly representation;
//! the issue loop of a cycle simulator wants none of its flexibility. It
//! wants flat, fixed-size records with every per-instruction decision
//! already made: which registers the scoreboard must consult, whether the
//! opcode is wide/store/memory, which comparison an `ISETP` performs,
//! which special register an `S2R` reads. [`DecodedStream::lower`] makes
//! all of those decisions exactly once per kernel launch and produces a
//! cache-friendly `Vec<DecodedInstr>` that is shared `Arc`-style across
//! every warp and SM of the launch — the hot loop then borrows
//! `&DecodedInstr` and never touches the allocator or a decoder again.
//!
//! Lowering is also where corrupt microcode surfaces: a bad `ISETP`
//! comparison immediate or an unknown `S2R` selector is a typed
//! [`DecodeError`] at launch, not a silently misexecuted instruction at
//! cycle three million.

use std::fmt;

use crate::instr::{CmpOp, HintBits, Instruction, MemRef, Operand, Predicate};
use crate::op::{Opcode, OpcodeClass, SpecialReg};
use crate::program::Program;
use crate::reg::Reg;
use crate::space::MemSpace;

/// Upper bound on the scoreboard sources of one instruction: three operand
/// slots that may each be a register pair, but at most two of them wide
/// (`IADD64`), plus a 64-bit address pair — the worst case over the ISA is
/// six 32-bit registers.
pub const MAX_SRC_REGS: usize = 6;

/// Why a program cannot be lowered to a [`DecodedStream`].
///
/// These are microcode-integrity errors: the instruction shape is valid to
/// *store* (the [`Instruction`] struct cannot express them as type errors)
/// but has no defined execution. The seed simulator silently patched them
/// (`CmpOp::decode(v).unwrap_or(CmpOp::Eq)`), which turned corrupt
/// microcode into a wrong-but-plausible compare; lowering rejects them at
/// launch instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// An `ISETP` comparison immediate outside the [`CmpOp`] encoding.
    BadCmpImmediate {
        /// Instruction index of the offending `ISETP`.
        pc: usize,
        /// The unencodable immediate.
        value: i32,
    },
    /// An `ISETP` whose comparison slot is not an immediate at all.
    NonImmediateCmp {
        /// Instruction index of the offending `ISETP`.
        pc: usize,
    },
    /// An `S2R` selector that names no special register.
    BadSpecialSelector {
        /// Instruction index of the offending `S2R`.
        pc: usize,
        /// The unknown selector value.
        selector: i64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadCmpImmediate { pc, value } => {
                write!(f, "ISETP at pc {pc} carries invalid comparison immediate {value:#x}")
            }
            DecodeError::NonImmediateCmp { pc } => {
                write!(f, "ISETP at pc {pc} comparison operand is not an immediate")
            }
            DecodeError::BadSpecialSelector { pc, selector } => {
                write!(f, "S2R at pc {pc} reads unknown special-register selector {selector}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// One fully pre-decoded instruction: every field the issue loop consults
/// per cycle, resolved once at lowering time. All fields are `Copy`; the
/// record is borrowed, never cloned, on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInstr {
    /// Operation.
    pub opcode: Opcode,
    /// Functional-unit class (pre-resolved from the opcode).
    pub class: OpcodeClass,
    /// Destination register (predicate index for `ISETP`, in `dst.0`).
    pub dst: Reg,
    /// Source operands.
    pub srcs: [Operand; 3],
    /// Guard predicate, if any.
    pub pred: Option<Predicate>,
    /// Memory reference of a load/store.
    pub mem: Option<MemRef>,
    /// LMI hint bits.
    pub hints: HintBits,
    /// Scoreboard sources, expanded to individual 32-bit registers
    /// (pair-high halves included). Only `src_regs[..src_reg_count]` is
    /// meaningful.
    pub src_regs: [Reg; MAX_SRC_REGS],
    /// Number of valid entries in `src_regs`.
    pub src_reg_count: u8,
    /// Pre-decoded `ISETP` comparison (meaningful only for `ISETP`;
    /// validated by lowering).
    pub cmp: CmpOp,
    /// Pre-decoded `S2R` special register (meaningful only for `S2R`;
    /// validated by lowering).
    pub special: SpecialReg,
    /// Memory space of a load/store opcode.
    pub mem_space: Option<MemSpace>,
    /// `opcode.is_store()`.
    pub is_store: bool,
    /// `opcode.is_wide()` — 64-bit register-pair integer op.
    pub wide: bool,
    /// `dst.is_valid_pair_base()`, the guard every pair write needs.
    pub dst_pair: bool,
    /// For a non-`LDC` memory op: the address register is a valid pair
    /// base, so the scoreboard/verdict wait covers `addr+1` too.
    pub mem_addr_pair: bool,
    /// Branch target of a `BRA` (absolute instruction index). For the
    /// degenerate non-immediate target the lowering pins the fall-through
    /// `pc + 1`, matching the interpreter it replaces.
    pub bra_target: usize,
}

impl DecodedInstr {
    /// The scoreboard source registers as a slice.
    #[inline]
    pub fn source_regs(&self) -> &[Reg] {
        &self.src_regs[..self.src_reg_count as usize]
    }

    fn lower(pc: usize, ins: &Instruction) -> Result<DecodedInstr, DecodeError> {
        let mut src_regs = [Reg::RZ; MAX_SRC_REGS];
        let mut n = 0usize;
        let pair_slots = ins.pair_source_slots();
        for (i, src) in ins.srcs.iter().enumerate() {
            if let Operand::Reg(r) = src {
                if r.is_zero_reg() {
                    continue;
                }
                src_regs[n] = *r;
                n += 1;
                if pair_slots[i] && r.is_valid_pair_base() {
                    src_regs[n] = r.pair_high();
                    n += 1;
                }
            }
        }
        if let Some(mem) = &ins.mem {
            if !mem.addr.is_zero_reg() {
                src_regs[n] = mem.addr;
                n += 1;
                if ins.opcode != Opcode::Ldc && mem.addr.is_valid_pair_base() {
                    src_regs[n] = mem.addr.pair_high();
                    n += 1;
                }
            }
        }

        let cmp = if ins.opcode == Opcode::Isetp {
            match ins.srcs[2] {
                Operand::Imm(v) => {
                    CmpOp::decode(v).ok_or(DecodeError::BadCmpImmediate { pc, value: v })?
                }
                _ => return Err(DecodeError::NonImmediateCmp { pc }),
            }
        } else {
            CmpOp::Eq
        };

        let special = if ins.opcode == Opcode::S2r {
            let sel = match ins.srcs[0] {
                Operand::Imm(v) => v as i64,
                _ => 0,
            };
            SpecialReg::from_selector(sel)
                .ok_or(DecodeError::BadSpecialSelector { pc, selector: sel })?
        } else {
            SpecialReg::TidX
        };

        let bra_target = match (ins.opcode, ins.srcs[0]) {
            (Opcode::Bra, Operand::Imm(t)) => t.max(0) as usize,
            _ => pc + 1,
        };

        Ok(DecodedInstr {
            opcode: ins.opcode,
            class: ins.opcode.class(),
            dst: ins.dst,
            srcs: ins.srcs,
            pred: ins.pred,
            mem: ins.mem,
            hints: ins.hints,
            src_regs,
            src_reg_count: n as u8,
            cmp,
            special,
            mem_space: ins.opcode.mem_space(),
            is_store: ins.opcode.is_store(),
            wide: ins.opcode.is_wide(),
            dst_pair: ins.dst.is_valid_pair_base(),
            mem_addr_pair: ins
                .mem
                .map(|m| ins.opcode != Opcode::Ldc && m.addr.is_valid_pair_base())
                .unwrap_or(false),
            bra_target,
        })
    }
}

/// A whole kernel lowered to flat [`DecodedInstr`] records.
///
/// Lowered once per launch (`O(program length)`), shared `Arc`-style by
/// every SM of the launch, indexed by pc on the hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedStream {
    instrs: Vec<DecodedInstr>,
}

impl DecodedStream {
    /// Lowers `program`, surfacing corrupt microcode as a typed error.
    pub fn lower(program: &Program) -> Result<DecodedStream, DecodeError> {
        let instrs = program
            .instructions
            .iter()
            .enumerate()
            .map(|(pc, ins)| DecodedInstr::lower(pc, ins))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DecodedStream { instrs })
    }

    /// The decoded instruction at `pc`, or `None` past the program end.
    #[inline]
    pub fn get(&self, pc: usize) -> Option<&DecodedInstr> {
        self.instrs.get(pc)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` if the stream holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::reg::PredReg;

    #[test]
    fn lowering_matches_source_regs() {
        let mut b = ProgramBuilder::new("t");
        b.push(Instruction::iadd64(Reg(4), Reg(6), Reg(2)));
        b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(4), 0, 4)));
        b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(8)));
        b.push(Instruction::exit());
        let p = b.build();
        let stream = DecodedStream::lower(&p).unwrap();
        assert_eq!(stream.len(), p.len());
        for (pc, ins) in p.instructions.iter().enumerate() {
            let di = stream.get(pc).unwrap();
            assert_eq!(di.source_regs(), ins.source_regs().as_slice(), "pc {pc}");
            assert_eq!(di.opcode, ins.opcode);
            assert_eq!(di.wide, ins.opcode.is_wide());
            assert_eq!(di.is_store, ins.opcode.is_store());
            assert_eq!(di.mem_space, ins.opcode.mem_space());
        }
    }

    #[test]
    fn isetp_cmp_is_predecoded() {
        let mut b = ProgramBuilder::new("t");
        b.push(Instruction::isetp(PredReg(0), Reg(2), CmpOp::Lt, 10));
        b.push(Instruction::exit());
        let stream = DecodedStream::lower(&b.build()).unwrap();
        assert_eq!(stream.get(0).unwrap().cmp, CmpOp::Lt);
    }

    #[test]
    fn corrupt_cmp_immediate_is_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.push(Instruction::isetp(PredReg(0), Reg(2), CmpOp::Lt, 10));
        b.push(Instruction::exit());
        let mut p = b.build();
        p.instructions[0].srcs[2] = Operand::Imm(99);
        assert_eq!(
            DecodedStream::lower(&p),
            Err(DecodeError::BadCmpImmediate { pc: 0, value: 99 })
        );
        p.instructions[0].srcs[2] = Operand::Reg(Reg(3));
        assert_eq!(DecodedStream::lower(&p), Err(DecodeError::NonImmediateCmp { pc: 0 }));
    }

    #[test]
    fn corrupt_s2r_selector_is_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.push(Instruction::s2r(Reg(0), SpecialReg::TidX));
        b.push(Instruction::exit());
        let mut p = b.build();
        p.instructions[0].srcs[0] = Operand::Imm(42);
        assert_eq!(
            DecodedStream::lower(&p),
            Err(DecodeError::BadSpecialSelector { pc: 0, selector: 42 })
        );
    }

    #[test]
    fn bra_target_is_pinned() {
        let mut b = ProgramBuilder::new("t");
        b.push(Instruction::bra(0));
        b.push(Instruction::exit());
        let stream = DecodedStream::lower(&b.build()).unwrap();
        assert_eq!(stream.get(0).unwrap().bra_target, 0);
        assert_eq!(stream.get(1).unwrap().bra_target, 2, "non-branch pins fall-through");
    }

    #[test]
    fn worst_case_source_count_fits() {
        // IADD64 with two register pairs is 4; a global store reading a
        // value register plus a 64-bit address pair is 3. Nothing exceeds
        // MAX_SRC_REGS.
        let i = Instruction::iadd64(Reg(4), Reg(6), Reg(2));
        assert!(i.source_regs().len() <= MAX_SRC_REGS);
        let s = Instruction::stg(MemRef::new(Reg(4), 0, 8), Reg(8));
        assert!(s.source_regs().len() <= MAX_SRC_REGS);
    }
}
