//! The 128-bit instruction microcode format (paper Fig. 9).
//!
//! NVIDIA GPUs since Volta use a 128-bit instruction word that carries the
//! instruction code, compile-time control information (stall counts,
//! scoreboard barriers, reuse flags) and an unused reserved field between the
//! two. Jia et al. measured 14 reserved bits on compute capability 7.0–7.2
//! and 13 bits on 7.5–9.0; LMI repurposes two of them:
//!
//! * **bit 28 — `A` (activation)**: the instruction handles a pointer and the
//!   OCU must bounds-check its result;
//! * **bit 27 — `S` (selection)**: which of the first two source operands
//!   carries the incoming pointer.
//!
//! This module defines a concrete 128-bit layout with exactly that property
//! and a lossless encoder/decoder, so the compiler → decoder → OCU hint path
//! of the paper can be exercised end to end.
//!
//! ## Bit layout
//!
//! | bits      | field                                             |
//! |-----------|---------------------------------------------------|
//! | 0–26      | control info (stall, yield, barriers, wait, reuse)|
//! | 27–40     | reserved (27 = `S`, 28 = `A`; 13 or 14 bits wide) |
//! | 41–47     | opcode                                            |
//! | 48–54     | destination register                              |
//! | 55–75     | three 7-bit source register / const-bank fields   |
//! | 76–81     | three 2-bit operand-kind fields                   |
//! | 82–86     | predicate (valid, negate, register)               |
//! | 87–92     | memory space, mem-valid, width                    |
//! | 93–124    | 32-bit immediate / const offset / mem offset      |
//! | 125–127   | unused                                            |

use std::fmt;

use crate::instr::{HintBits, Instruction, MemRef, Operand, Predicate};
use crate::op::Opcode;
use crate::reg::{PredReg, Reg};
use crate::space::MemSpace;

/// GPU compute capability, selecting the reserved-field width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeCapability {
    /// CC 7.0–7.2 (Volta): 14 reserved bits.
    Cc70,
    /// CC 7.5 (Turing): 13 reserved bits.
    Cc75,
    /// CC 8.0/8.6 (Ampere): 13 reserved bits.
    Cc80,
    /// CC 9.0 (Hopper): 13 reserved bits.
    Cc90,
}

impl ComputeCapability {
    /// Width of the reserved field in bits (paper §VI-B: 14 on CC 7.0–7.2,
    /// 13 on CC 7.5–9.0).
    pub fn reserved_bits(self) -> u32 {
        match self {
            ComputeCapability::Cc70 => 14,
            ComputeCapability::Cc75 | ComputeCapability::Cc80 | ComputeCapability::Cc90 => 13,
        }
    }
}

/// Errors from microcode encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A register index exceeds the 7-bit encodable range.
    RegOutOfRange(u8),
    /// A predicate register index exceeds the 3-bit encodable range.
    PredOutOfRange(u8),
    /// More than one operand needs the shared 32-bit immediate field.
    ImmediateFieldConflict,
    /// The activation hint is set on an opcode outside the integer ALU.
    HintOnNonIntAlu(Opcode),
    /// The opcode field does not name a valid opcode.
    BadOpcode(u8),
    /// An operand-kind field holds an invalid value.
    BadOperandKind(u8),
    /// The memory-space field holds an invalid value.
    BadMemSpace(u8),
    /// A reserved bit outside the A/S hints is set (corrupt word).
    ReservedBitSet,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::RegOutOfRange(r) => write!(f, "register index {r} exceeds 7 bits"),
            CodecError::PredOutOfRange(p) => write!(f, "predicate register {p} exceeds 3 bits"),
            CodecError::ImmediateFieldConflict => {
                write!(f, "instruction needs the shared immediate field twice")
            }
            CodecError::HintOnNonIntAlu(op) => {
                write!(f, "activation hint set on non-integer opcode {op}")
            }
            CodecError::BadOpcode(b) => write!(f, "invalid opcode field {b:#x}"),
            CodecError::BadOperandKind(b) => write!(f, "invalid operand kind {b:#x}"),
            CodecError::BadMemSpace(b) => write!(f, "invalid memory space {b:#x}"),
            CodecError::ReservedBitSet => write!(f, "unexpected reserved bit set"),
        }
    }
}

impl std::error::Error for CodecError {}

const S_BIT: u32 = 27;
const A_BIT: u32 = 28;
const OPCODE_LSB: u32 = 41;
const DST_LSB: u32 = 48;
const SRC_LSB: [u32; 3] = [55, 62, 69];
const KIND_LSB: [u32; 3] = [76, 78, 80];
const PRED_LSB: u32 = 82;
const SPACE_LSB: u32 = 87;
const MEM_VALID_BIT: u32 = 90;
const WIDTH_LSB: u32 = 91;
const IMM_LSB: u32 = 93;

const KIND_NONE: u8 = 0;
const KIND_REG: u8 = 1;
const KIND_IMM: u8 = 2;
const KIND_CONST: u8 = 3;

/// An encoded 128-bit instruction word.
///
/// ```
/// use lmi_isa::{Instruction, Microcode, ComputeCapability, Reg, HintBits};
///
/// let ins = Instruction::iadd64(Reg(2), Reg(2), 256)
///     .with_hints(HintBits::check_operand(0));
/// let word = Microcode::encode(&ins, ComputeCapability::Cc70)?;
/// assert!(word.activate_bit());
/// assert_eq!(word.select_bit(), 0);
/// assert_eq!(word.decode(ComputeCapability::Cc70)?, ins);
/// # Ok::<(), lmi_isa::CodecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Microcode(pub u128);

fn field(word: u128, lsb: u32, width: u32) -> u128 {
    (word >> lsb) & ((1u128 << width) - 1)
}

fn set_field(word: &mut u128, lsb: u32, width: u32, value: u128) {
    debug_assert!(value < (1u128 << width));
    let mask = ((1u128 << width) - 1) << lsb;
    *word = (*word & !mask) | (value << lsb);
}

impl Microcode {
    /// Encodes an instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if a register exceeds the encodable range,
    /// two operands both need the shared immediate field, or the activation
    /// hint is set on a non-integer opcode.
    pub fn encode(ins: &Instruction, _cc: ComputeCapability) -> Result<Microcode, CodecError> {
        if ins.hints.activate && !ins.opcode.can_carry_hints() {
            return Err(CodecError::HintOnNonIntAlu(ins.opcode));
        }
        let mut word = 0u128;
        set_field(&mut word, OPCODE_LSB, 7, ins.opcode.to_bits() as u128);
        if ins.dst.0 > 127 {
            return Err(CodecError::RegOutOfRange(ins.dst.0));
        }
        set_field(&mut word, DST_LSB, 7, ins.dst.0 as u128);

        let mut imm_used = false;
        let mut put_imm = |word: &mut u128, v: u32| -> Result<(), CodecError> {
            if imm_used {
                return Err(CodecError::ImmediateFieldConflict);
            }
            imm_used = true;
            set_field(word, IMM_LSB, 32, v as u128);
            Ok(())
        };

        for (i, src) in ins.srcs.iter().enumerate() {
            match src {
                Operand::None => set_field(&mut word, KIND_LSB[i], 2, KIND_NONE as u128),
                Operand::Reg(r) => {
                    if r.0 > 127 {
                        return Err(CodecError::RegOutOfRange(r.0));
                    }
                    set_field(&mut word, KIND_LSB[i], 2, KIND_REG as u128);
                    set_field(&mut word, SRC_LSB[i], 7, r.0 as u128);
                }
                Operand::Imm(v) => {
                    set_field(&mut word, KIND_LSB[i], 2, KIND_IMM as u128);
                    put_imm(&mut word, *v as u32)?;
                }
                Operand::Const { bank, offset } => {
                    if *bank > 127 {
                        return Err(CodecError::RegOutOfRange(*bank));
                    }
                    set_field(&mut word, KIND_LSB[i], 2, KIND_CONST as u128);
                    set_field(&mut word, SRC_LSB[i], 7, *bank as u128);
                    put_imm(&mut word, *offset as u32)?;
                }
            }
        }

        if let Some(pred) = &ins.pred {
            if pred.reg.0 > 7 {
                return Err(CodecError::PredOutOfRange(pred.reg.0));
            }
            let bits = 0b1 | ((pred.negated as u128) << 1) | ((pred.reg.0 as u128) << 2);
            set_field(&mut word, PRED_LSB, 5, bits);
        }

        if let Some(mem) = &ins.mem {
            if mem.addr.0 > 127 {
                return Err(CodecError::RegOutOfRange(mem.addr.0));
            }
            set_field(&mut word, MEM_VALID_BIT, 1, 1);
            let space = ins.opcode.mem_space().unwrap_or(MemSpace::Global);
            set_field(&mut word, SPACE_LSB, 3, space.to_bits() as u128);
            set_field(&mut word, WIDTH_LSB, 2, mem.width.trailing_zeros() as u128);
            // The address register rides in the (otherwise unused) src2 field.
            set_field(&mut word, SRC_LSB[2], 7, mem.addr.0 as u128);
            if ins.opcode != Opcode::Ldc {
                put_imm(&mut word, mem.offset as u32)?;
            }
        }

        if ins.hints.activate {
            set_field(&mut word, A_BIT, 1, 1);
            set_field(&mut word, S_BIT, 1, ins.hints.select as u128);
        }

        Ok(Microcode(word))
    }

    /// Decodes the word back into an [`Instruction`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the word holds invalid field values.
    pub fn decode(self, _cc: ComputeCapability) -> Result<Instruction, CodecError> {
        let word = self.0;
        let op_bits = field(word, OPCODE_LSB, 7) as u8;
        let opcode = Opcode::from_bits(op_bits).ok_or(CodecError::BadOpcode(op_bits))?;
        let dst = Reg(field(word, DST_LSB, 7) as u8);

        let imm = field(word, IMM_LSB, 32) as u32;
        let mut srcs = [Operand::None; 3];
        for i in 0..3 {
            let kind = field(word, KIND_LSB[i], 2) as u8;
            let payload = field(word, SRC_LSB[i], 7) as u8;
            srcs[i] = match kind {
                KIND_NONE => Operand::None,
                KIND_REG => Operand::Reg(Reg(payload)),
                KIND_IMM => Operand::Imm(imm as i32),
                KIND_CONST => Operand::Const { bank: payload, offset: imm as u16 },
                other => return Err(CodecError::BadOperandKind(other)),
            };
        }

        let pred_bits = field(word, PRED_LSB, 5);
        let pred = if pred_bits & 1 != 0 {
            Some(Predicate {
                reg: PredReg(((pred_bits >> 2) & 0x7) as u8),
                negated: (pred_bits >> 1) & 1 != 0,
            })
        } else {
            None
        };

        let mem = if field(word, MEM_VALID_BIT, 1) != 0 {
            let space_bits = field(word, SPACE_LSB, 3) as u8;
            MemSpace::from_bits(space_bits).ok_or(CodecError::BadMemSpace(space_bits))?;
            let width = 1u8 << field(word, WIDTH_LSB, 2);
            let addr = Reg(field(word, SRC_LSB[2], 7) as u8);
            let offset = if opcode == Opcode::Ldc { imm as u16 as i32 } else { imm as i32 };
            Some(MemRef { addr, offset, width })
        } else {
            None
        };

        let hints = if field(word, A_BIT, 1) != 0 {
            HintBits { activate: true, select: field(word, S_BIT, 1) as u8 }
        } else {
            HintBits::NONE
        };
        if hints.activate && !opcode.can_carry_hints() {
            return Err(CodecError::HintOnNonIntAlu(opcode));
        }

        Ok(Instruction { opcode, dst, srcs, pred, mem, hints })
    }

    /// The LMI activation hint (`A`, bit 28).
    pub fn activate_bit(self) -> bool {
        field(self.0, A_BIT, 1) != 0
    }

    /// The LMI operand-selection hint (`S`, bit 27).
    pub fn select_bit(self) -> u8 {
        field(self.0, S_BIT, 1) as u8
    }

    /// The raw reserved field (excluding the two hint bits), `cc` selecting
    /// the 13- or 14-bit width.
    pub fn reserved_field(self, cc: ComputeCapability) -> u16 {
        let width = cc.reserved_bits();
        let raw = field(self.0, S_BIT, width) as u16;
        raw >> 2 // strip S (bit 27) and A (bit 28)
    }

    /// Verifies that no reserved bit other than the A/S hints is set — a
    /// well-formed LMI binary never touches the rest of the reserved field.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::ReservedBitSet`] otherwise.
    pub fn check_reserved(self, cc: ComputeCapability) -> Result<(), CodecError> {
        if self.reserved_field(cc) != 0 {
            Err(CodecError::ReservedBitSet)
        } else {
            Ok(())
        }
    }
}

impl fmt::Display for Microcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::CmpOp;
    use crate::op::SpecialReg;

    const CCS: [ComputeCapability; 4] = [
        ComputeCapability::Cc70,
        ComputeCapability::Cc75,
        ComputeCapability::Cc80,
        ComputeCapability::Cc90,
    ];

    fn round_trip(ins: &Instruction) {
        for cc in CCS {
            let word = Microcode::encode(ins, cc).expect("encode");
            let back = word.decode(cc).expect("decode");
            assert_eq!(&back, ins, "round trip under {cc:?}");
        }
    }

    #[test]
    fn round_trips_representative_instructions() {
        round_trip(&Instruction::iadd3(Reg(0), Reg(1), Reg(2)));
        round_trip(&Instruction::iadd3(Reg(0), Reg(1), -64));
        round_trip(&Instruction::imad(Reg(3), Reg(4), 12, Reg(5)));
        round_trip(&Instruction::mov(Reg(1), Operand::Const { bank: 0, offset: 0x28 }));
        round_trip(
            &Instruction::iadd64(Reg(4), Reg(4), 256).with_hints(HintBits::check_operand(0)),
        );
        round_trip(&Instruction::mov64(Reg(8), Reg(4)).with_hints(HintBits::check_operand(0)));
        round_trip(&Instruction::lea64(Reg(6), Reg(4), Reg(0), 2));
        round_trip(&Instruction::isetp(PredReg(0), Reg(0), CmpOp::Lt, Reg(1)));
        round_trip(&Instruction::ldg(Reg(8), MemRef::new(Reg(4), 16, 4)));
        round_trip(&Instruction::stg(MemRef::new(Reg(4), -8, 8), Reg(8)));
        round_trip(&Instruction::lds(Reg(8), MemRef::new(Reg(2), 0, 4)));
        round_trip(&Instruction::stl(MemRef::new(Reg(2), 0x60, 4), Reg(9)));
        round_trip(&Instruction::ldc(Reg(1), 0, 0x28, 8));
        round_trip(&Instruction::malloc(Reg(4), Reg(0)));
        round_trip(&Instruction::free(Reg(4)));
        round_trip(&Instruction::s2r(Reg(0), SpecialReg::TidX));
        round_trip(&Instruction::bra(-5).with_pred(Predicate::unless(PredReg(0))));
        round_trip(&Instruction::bar());
        round_trip(&Instruction::exit());
        round_trip(&Instruction::nop());
        round_trip(&Instruction::ffma(Reg(10), Reg(11), Reg(12), Reg(13)));
    }

    #[test]
    fn hint_bits_land_at_positions_27_and_28() {
        let ins = Instruction::iadd64(Reg(4), Reg(4), 8).with_hints(HintBits::check_operand(1));
        let word = Microcode::encode(&ins, ComputeCapability::Cc70).unwrap();
        assert_eq!((word.0 >> 28) & 1, 1, "A at bit 28");
        assert_eq!((word.0 >> 27) & 1, 1, "S at bit 27");
        let unmarked = Instruction::iadd64(Reg(4), Reg(4), 8);
        let word = Microcode::encode(&unmarked, ComputeCapability::Cc70).unwrap();
        assert_eq!((word.0 >> 28) & 1, 0);
        assert_eq!((word.0 >> 27) & 1, 0);
    }

    #[test]
    fn reserved_field_widths_match_compute_capabilities() {
        assert_eq!(ComputeCapability::Cc70.reserved_bits(), 14);
        assert_eq!(ComputeCapability::Cc75.reserved_bits(), 13);
        assert_eq!(ComputeCapability::Cc80.reserved_bits(), 13);
        assert_eq!(ComputeCapability::Cc90.reserved_bits(), 13);
    }

    #[test]
    fn clean_encode_leaves_reserved_clear() {
        let ins = Instruction::iadd64(Reg(4), Reg(4), 8).with_hints(HintBits::check_operand(0));
        let word = Microcode::encode(&ins, ComputeCapability::Cc80).unwrap();
        assert!(word.check_reserved(ComputeCapability::Cc80).is_ok());
    }

    #[test]
    fn corrupt_reserved_bit_detected() {
        let ins = Instruction::nop();
        let mut word = Microcode::encode(&ins, ComputeCapability::Cc80).unwrap();
        word.0 |= 1 << 30; // a reserved bit that is not A or S
        assert_eq!(word.check_reserved(ComputeCapability::Cc80), Err(CodecError::ReservedBitSet));
    }

    #[test]
    fn two_immediates_conflict() {
        let ins = Instruction::imad(Reg(0), 3, 4, Reg(1));
        assert_eq!(
            Microcode::encode(&ins, ComputeCapability::Cc80),
            Err(CodecError::ImmediateFieldConflict)
        );
    }

    #[test]
    fn reg_out_of_range_rejected() {
        let ins = Instruction::iadd3(Reg(200), Reg(1), Reg(2));
        assert_eq!(
            Microcode::encode(&ins, ComputeCapability::Cc80),
            Err(CodecError::RegOutOfRange(200))
        );
    }

    #[test]
    fn hint_on_fpu_rejected_by_codec() {
        // Bypass the constructor assertion by building the struct directly.
        let ins = Instruction {
            opcode: Opcode::Fadd,
            dst: Reg(0),
            srcs: [Operand::Reg(Reg(1)), Operand::Reg(Reg(2)), Operand::None],
            pred: None,
            mem: None,
            hints: HintBits { activate: true, select: 0 },
        };
        assert_eq!(
            Microcode::encode(&ins, ComputeCapability::Cc80),
            Err(CodecError::HintOnNonIntAlu(Opcode::Fadd))
        );
    }

    #[test]
    fn bad_opcode_field_detected() {
        let word = Microcode(99u128 << OPCODE_LSB);
        assert_eq!(word.decode(ComputeCapability::Cc80), Err(CodecError::BadOpcode(99)));
    }
}
