//! # lmi-isa — a SASS-like GPU instruction set for the LMI reproduction
//!
//! This crate defines the instruction set executed by the `lmi-sim` cycle
//! simulator and produced by the `lmi-compiler` backend. It mirrors the
//! properties of NVIDIA's SASS that the *Let-Me-In* (LMI, HPCA 2025) paper
//! relies on:
//!
//! * a **128-bit instruction microcode** format with a reserved field between
//!   the control information and the instruction code (13 bits on compute
//!   capability 7.5–9.0, 14 bits on 7.0–7.2), two bits of which LMI repurposes
//!   as the **activation (A)** and **operand-selection (S)** hint bits
//!   (paper Fig. 9) — see [`microcode`];
//! * distinct load/store opcodes per memory region (`LDG`/`STG` for global,
//!   `LDS`/`STS` for shared, `LDL`/`STL` for local), which the paper's Fig. 1
//!   uses to classify memory traffic — see [`op::Opcode`];
//! * 32-bit architectural registers, so a 64-bit pointer occupies a register
//!   *pair* whose upper half carries the extent bits (paper Fig. 6).
//!
//! ## Example
//!
//! ```
//! use lmi_isa::{Instruction, Opcode, Operand, Reg, HintBits, Microcode, ComputeCapability};
//!
//! // A 64-bit pointer increment that the LMI compiler marked for checking:
//! // the OCU must verify operand 0 (the pointer) against the ALU result.
//! let add = Instruction::iadd64(Reg(4), Reg(4), Operand::Imm(16))
//!     .with_hints(HintBits::check_operand(0));
//! let word = Microcode::encode(&add, ComputeCapability::Cc80)?;
//! assert!(word.activate_bit());
//! let back = word.decode(ComputeCapability::Cc80)?;
//! assert_eq!(back, add);
//! # Ok::<(), lmi_isa::CodecError>(())
//! ```

pub mod abi;
pub mod asm;
pub mod decoded;
pub mod instr;
pub mod microcode;
pub mod op;
pub mod program;
pub mod reg;
pub mod space;

pub use decoded::{DecodeError, DecodedInstr, DecodedStream};
pub use instr::{HintBits, Instruction, MemRef, Operand, Predicate};
pub use microcode::{CodecError, ComputeCapability, Microcode};
pub use op::{Opcode, OpcodeClass};
pub use program::{Program, ProgramBuilder};
pub use reg::{PredReg, Reg};
pub use space::MemSpace;
