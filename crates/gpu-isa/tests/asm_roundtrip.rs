//! Property test: the assembler parses the disassembler's output back to
//! the identical instruction, for every syntax the toolchain emits.

use lmi_isa::asm::assemble;
use lmi_isa::instr::CmpOp;
use lmi_isa::op::SpecialReg;
use lmi_isa::reg::PredReg;
use lmi_isa::{HintBits, Instruction, MemRef, Operand, Predicate, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..=126).prop_map(Reg)
}

fn arb_pair() -> impl Strategy<Value = Reg> {
    (0u8..=124).prop_map(Reg)
}

fn arb_src() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        any::<i32>().prop_map(Operand::Imm),
        ((0u8..8), any::<u16>()).prop_map(|(bank, offset)| Operand::Const { bank, offset }),
    ]
}

/// Instructions in the assembler-supported subset, via the constructors.
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (arb_reg(), arb_src(), arb_src()).prop_map(|(d, a, b)| Instruction::iadd3(d, a, b)),
        (arb_reg(), arb_src()).prop_map(|(d, a)| Instruction::mov(d, a)),
        (arb_pair(), arb_pair()).prop_map(|(d, a)| Instruction::mov64(d, a)),
        (arb_pair(), arb_pair(), any::<i32>(), any::<bool>(), 0u8..=1).prop_map(
            |(d, a, off, marked, sel)| {
                let mut i = Instruction::iadd64(d, a, off);
                if marked {
                    i = i.with_hints(HintBits::check_operand(sel));
                }
                i
            }
        ),
        (arb_pair(), arb_pair(), arb_reg(), 0u8..8).prop_map(|(d, a, idx, sh)| {
            Instruction::lea64(d, a, idx, sh)
        }),
        (arb_reg(), arb_pair(), any::<i32>(), any::<bool>()).prop_map(|(d, a, off, load)| {
            let mem = MemRef::new(a, off, 4);
            if load {
                Instruction::ldg(d, mem)
            } else {
                Instruction::stg(mem, d)
            }
        }),
        (arb_reg(), arb_pair(), any::<i32>()).prop_map(|(d, a, off)| {
            Instruction::lds(d, MemRef::new(a, off, 4))
        }),
        (arb_reg(), arb_pair(), any::<i32>()).prop_map(|(d, a, off)| {
            Instruction::stl(MemRef::new(a, off, 4), d)
        }),
        (arb_pair(), arb_reg()).prop_map(|(d, s)| Instruction::malloc(d, s)),
        arb_pair().prop_map(Instruction::free),
        (arb_reg(), 0i64..=4)
            .prop_map(|(d, s)| Instruction::s2r(d, SpecialReg::from_selector(s).unwrap())),
        (0i32..10_000, (0u8..=7), any::<bool>()).prop_map(|(t, p, n)| {
            Instruction::bra(t).with_pred(Predicate { reg: PredReg(p), negated: n })
        }),
        Just(Instruction::bar()),
        Just(Instruction::exit()),
        Just(Instruction::nop()),
    ]
}

proptest! {
    #[test]
    fn disassembly_reassembles_identically(instrs in proptest::collection::vec(arb_instruction(), 1..20)) {
        let mut text = String::new();
        for (pc, ins) in instrs.iter().enumerate() {
            text.push_str(&format!("/*{pc:04}*/  {ins} ;\n"));
        }
        let program = assemble("rt", &text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(program.len(), instrs.len());
        for (parsed, original) in program.instructions.iter().zip(&instrs) {
            prop_assert_eq!(parsed, original, "text: {}", original);
        }
    }

    #[test]
    fn isetp_round_trips_structurally(
        p in 0u8..=7,
        a in arb_reg(),
        b in arb_reg(),
        cmp_code in 0i32..=5,
    ) {
        let cmp = CmpOp::decode(cmp_code).unwrap();
        let name = match cmp {
            CmpOp::Eq => "EQ", CmpOp::Ne => "NE", CmpOp::Lt => "LT",
            CmpOp::Le => "LE", CmpOp::Gt => "GT", CmpOp::Ge => "GE",
        };
        let text = format!("ISETP P{p}, {a}, {name}, {b}");
        let program = assemble("t", &text).unwrap();
        prop_assert_eq!(&program.instructions[0], &Instruction::isetp(PredReg(p), a, cmp, b));
    }
}
