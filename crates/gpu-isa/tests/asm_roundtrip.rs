//! Randomized property test: the assembler parses the disassembler's
//! output back to the identical instruction, for every syntax the
//! toolchain emits. Seeded SplitMix64 keeps failures reproducible.

use lmi_isa::asm::assemble;
use lmi_isa::instr::CmpOp;
use lmi_isa::op::SpecialReg;
use lmi_isa::reg::PredReg;
use lmi_isa::{HintBits, Instruction, MemRef, Operand, Predicate, Reg};
use lmi_telemetry::SplitMix64;

fn reg(rng: &mut SplitMix64) -> Reg {
    Reg(rng.below(127) as u8)
}

fn pair(rng: &mut SplitMix64) -> Reg {
    Reg(rng.below(125) as u8)
}

fn src(rng: &mut SplitMix64) -> Operand {
    match rng.below(3) {
        0 => Operand::Reg(reg(rng)),
        1 => Operand::Imm(rng.next_u32() as i32),
        _ => Operand::Const { bank: rng.below(8) as u8, offset: rng.next_u32() as u16 },
    }
}

/// Instructions in the assembler-supported subset, via the constructors.
fn instruction(rng: &mut SplitMix64) -> Instruction {
    match rng.below(15) {
        0 => Instruction::iadd3(reg(rng), src(rng), src(rng)),
        1 => Instruction::mov(reg(rng), src(rng)),
        2 => Instruction::mov64(pair(rng), pair(rng)),
        3 => {
            let mut i = Instruction::iadd64(pair(rng), pair(rng), rng.next_u32() as i32);
            if rng.chance(0.5) {
                i = i.with_hints(HintBits::check_operand(rng.below(2) as u8));
            }
            i
        }
        4 => Instruction::lea64(pair(rng), pair(rng), reg(rng), rng.below(8) as u8),
        5 => {
            let mem = MemRef::new(pair(rng), rng.next_u32() as i32, 4);
            let d = reg(rng);
            if rng.chance(0.5) {
                Instruction::ldg(d, mem)
            } else {
                Instruction::stg(mem, d)
            }
        }
        6 => Instruction::lds(reg(rng), MemRef::new(pair(rng), rng.next_u32() as i32, 4)),
        7 => Instruction::stl(MemRef::new(pair(rng), rng.next_u32() as i32, 4), reg(rng)),
        8 => Instruction::malloc(pair(rng), reg(rng)),
        9 => Instruction::free(pair(rng)),
        10 => Instruction::s2r(reg(rng), SpecialReg::from_selector(rng.below(5) as i64).unwrap()),
        11 => Instruction::bra(rng.below(10_000) as i32)
            .with_pred(Predicate { reg: PredReg(rng.below(8) as u8), negated: rng.chance(0.5) }),
        12 => Instruction::bar(),
        13 => Instruction::exit(),
        _ => Instruction::nop(),
    }
}

#[test]
fn disassembly_reassembles_identically() {
    let mut rng = SplitMix64::new(0xA53);
    for case in 0..300 {
        let count = rng.range(1, 20) as usize;
        let instrs: Vec<Instruction> = (0..count).map(|_| instruction(&mut rng)).collect();
        let mut text = String::new();
        for (pc, ins) in instrs.iter().enumerate() {
            text.push_str(&format!("/*{pc:04}*/  {ins} ;\n"));
        }
        let program = assemble("rt", &text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        assert_eq!(program.len(), instrs.len(), "case {case}");
        for (parsed, original) in program.instructions.iter().zip(&instrs) {
            assert_eq!(parsed, original, "case {case}, text: {original}");
        }
    }
}

#[test]
fn isetp_round_trips_structurally() {
    let mut rng = SplitMix64::new(0x15E7);
    for _ in 0..200 {
        let p = rng.below(8) as u8;
        let a = reg(&mut rng);
        let b = reg(&mut rng);
        let cmp = CmpOp::decode(rng.below(6) as i32).unwrap();
        let name = match cmp {
            CmpOp::Eq => "EQ",
            CmpOp::Ne => "NE",
            CmpOp::Lt => "LT",
            CmpOp::Le => "LE",
            CmpOp::Gt => "GT",
            CmpOp::Ge => "GE",
        };
        let text = format!("ISETP P{p}, {a}, {name}, {b}");
        let program = assemble("t", &text).unwrap();
        assert_eq!(&program.instructions[0], &Instruction::isetp(PredReg(p), a, cmp, b));
    }
}
