//! Property tests: microcode encode/decode is lossless for every valid
//! instruction shape, on every compute capability.

use lmi_isa::instr::CmpOp;
use lmi_isa::op::SpecialReg;
use lmi_isa::reg::PredReg;
use lmi_isa::{
    ComputeCapability, HintBits, Instruction, MemRef, Microcode, Opcode, Operand, Predicate, Reg,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..=127).prop_map(Reg)
}

fn arb_pair_base() -> impl Strategy<Value = Reg> {
    (0u8..=125).prop_map(Reg)
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        Just(Operand::None),
        arb_reg().prop_map(Operand::Reg),
        any::<i32>().prop_map(Operand::Imm),
        ((0u8..=127), any::<u16>()).prop_map(|(bank, offset)| Operand::Const { bank, offset }),
    ]
}

fn arb_pred() -> impl Strategy<Value = Option<Predicate>> {
    prop_oneof![
        Just(None),
        ((0u8..=7), any::<bool>())
            .prop_map(|(r, negated)| Some(Predicate { reg: PredReg(r), negated })),
    ]
}

fn arb_cc() -> impl Strategy<Value = ComputeCapability> {
    prop_oneof![
        Just(ComputeCapability::Cc70),
        Just(ComputeCapability::Cc75),
        Just(ComputeCapability::Cc80),
        Just(ComputeCapability::Cc90),
    ]
}

fn arb_width() -> impl Strategy<Value = u8> {
    prop_oneof![Just(1u8), Just(2), Just(4), Just(8)]
}

/// Arbitrary *valid* instructions: built through the typed constructors so
/// operand shapes match what the compiler can emit.
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let alu3 = (arb_reg(), arb_operand(), arb_operand(), arb_pred(), any::<bool>(), 0u8..=1).prop_map(
        |(dst, a, b, pred, activate, select)| {
            let mut ins = Instruction::iadd3(dst, a, b);
            if activate {
                ins = ins.with_hints(HintBits::check_operand(select));
            }
            if let Some(p) = pred {
                ins = ins.with_pred(p);
            }
            ins
        },
    );
    let wide = (arb_pair_base(), arb_pair_base(), any::<i32>(), any::<bool>(), 0u8..=1).prop_map(
        |(dst, a, off, activate, select)| {
            let mut ins = Instruction::iadd64(dst, a, off);
            if activate {
                ins = ins.with_hints(HintBits::check_operand(select));
            }
            ins
        },
    );
    let mem = (arb_pair_base(), arb_pair_base(), any::<i32>(), arb_width(), 0usize..=5).prop_map(
        |(addr, data, off, width, which)| {
            let mem = MemRef::new(addr, off, width);
            match which {
                0 => Instruction::ldg(data, mem),
                1 => Instruction::stg(mem, data),
                2 => Instruction::lds(data, mem),
                3 => Instruction::sts(mem, data),
                4 => Instruction::ldl(data, mem),
                _ => Instruction::stl(mem, data),
            }
        },
    );
    let misc = prop_oneof![
        (arb_reg(), 0i64..=4)
            .prop_map(|(d, s)| Instruction::s2r(d, SpecialReg::from_selector(s).unwrap())),
        (0u8..=7, arb_reg(), any::<i32>(), 0i32..=5).prop_map(|(p, a, b, c)| {
            Instruction::isetp(PredReg(p), a, CmpOp::decode(c).unwrap(), b)
        }),
        any::<i32>().prop_map(Instruction::bra),
        Just(Instruction::bar()),
        Just(Instruction::exit()),
        Just(Instruction::nop()),
        (arb_reg(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(d, a, b, c)| Instruction::ffma(d, a, b, c)),
        (arb_reg(), 0u8..=127, any::<u16>(), arb_width())
            .prop_map(|(d, bank, off, w)| Instruction::ldc(d, bank, off, w)),
    ];
    prop_oneof![alu3, wide, mem, misc]
}

fn needs_two_imm_slots(ins: &Instruction) -> bool {
    let imm_like = ins
        .srcs
        .iter()
        .filter(|s| matches!(s, Operand::Imm(_) | Operand::Const { .. }))
        .count();
    let mem_imm = usize::from(ins.mem.is_some() && ins.opcode != Opcode::Ldc);
    imm_like + mem_imm > 1
}

proptest! {
    #[test]
    fn encode_decode_round_trips(ins in arb_instruction(), cc in arb_cc()) {
        match Microcode::encode(&ins, cc) {
            Ok(word) => {
                let back = word.decode(cc).expect("decode of valid encode");
                prop_assert_eq!(back, ins);
            }
            Err(lmi_isa::CodecError::ImmediateFieldConflict) => {
                prop_assert!(needs_two_imm_slots(&ins));
            }
            Err(e) => prop_assert!(false, "unexpected encode error {e} for {ins}"),
        }
    }

    #[test]
    fn hint_bits_never_leak_into_other_fields(
        dst in arb_pair_base(),
        src in arb_pair_base(),
        off in any::<i32>(),
        cc in arb_cc(),
    ) {
        let plain = Instruction::iadd64(dst, src, off);
        let marked = plain.clone().with_hints(HintBits::check_operand(1));
        let w_plain = Microcode::encode(&plain, cc).unwrap();
        let w_marked = Microcode::encode(&marked, cc).unwrap();
        // The encodings differ exactly in bits 27/28.
        prop_assert_eq!(w_plain.0 ^ w_marked.0, (1u128 << 27) | (1u128 << 28));
        prop_assert!(w_plain.check_reserved(cc).is_ok());
        prop_assert!(w_marked.check_reserved(cc).is_ok());
    }

    #[test]
    fn decode_of_arbitrary_bits_never_panics(raw in any::<u128>(), cc in arb_cc()) {
        let _ = Microcode(raw).decode(cc);
    }
}
