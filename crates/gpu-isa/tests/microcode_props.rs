//! Randomized property tests: microcode encode/decode is lossless for
//! every valid instruction shape, on every compute capability.
//!
//! Driven by `lmi-telemetry`'s deterministic SplitMix64 instead of an
//! external property-testing framework, so the workspace builds offline;
//! fixed seeds keep failures reproducible.

use lmi_isa::instr::CmpOp;
use lmi_isa::op::SpecialReg;
use lmi_isa::reg::PredReg;
use lmi_isa::{
    ComputeCapability, HintBits, Instruction, MemRef, Microcode, Opcode, Operand, Predicate, Reg,
};
use lmi_telemetry::SplitMix64;

const CCS: [ComputeCapability; 4] = [
    ComputeCapability::Cc70,
    ComputeCapability::Cc75,
    ComputeCapability::Cc80,
    ComputeCapability::Cc90,
];

fn reg(rng: &mut SplitMix64) -> Reg {
    Reg(rng.below(128) as u8)
}

fn pair_base(rng: &mut SplitMix64) -> Reg {
    Reg(rng.below(126) as u8)
}

fn operand(rng: &mut SplitMix64) -> Operand {
    match rng.below(4) {
        0 => Operand::None,
        1 => Operand::Reg(reg(rng)),
        2 => Operand::Imm(rng.next_u32() as i32),
        _ => Operand::Const { bank: rng.below(128) as u8, offset: rng.next_u32() as u16 },
    }
}

fn pred(rng: &mut SplitMix64) -> Option<Predicate> {
    if rng.chance(0.5) {
        Some(Predicate { reg: PredReg(rng.below(8) as u8), negated: rng.chance(0.5) })
    } else {
        None
    }
}

fn width(rng: &mut SplitMix64) -> u8 {
    *rng.choose(&[1u8, 2, 4, 8])
}

/// Arbitrary *valid* instructions: built through the typed constructors so
/// operand shapes match what the compiler can emit.
fn instruction(rng: &mut SplitMix64) -> Instruction {
    match rng.below(4) {
        // 3-operand integer ALU.
        0 => {
            let mut ins = Instruction::iadd3(reg(rng), operand(rng), operand(rng));
            if rng.chance(0.5) {
                ins = ins.with_hints(HintBits::check_operand(rng.below(2) as u8));
            }
            if let Some(p) = pred(rng) {
                ins = ins.with_pred(p);
            }
            ins
        }
        // Wide (64-bit) pointer arithmetic.
        1 => {
            let mut ins =
                Instruction::iadd64(pair_base(rng), pair_base(rng), rng.next_u32() as i32);
            if rng.chance(0.5) {
                ins = ins.with_hints(HintBits::check_operand(rng.below(2) as u8));
            }
            ins
        }
        // Loads/stores across the three spaces.
        2 => {
            let mem = MemRef::new(pair_base(rng), rng.next_u32() as i32, width(rng));
            let data = pair_base(rng);
            match rng.below(6) {
                0 => Instruction::ldg(data, mem),
                1 => Instruction::stg(mem, data),
                2 => Instruction::lds(data, mem),
                3 => Instruction::sts(mem, data),
                4 => Instruction::ldl(data, mem),
                _ => Instruction::stl(mem, data),
            }
        }
        // Everything else.
        _ => match rng.below(8) {
            0 => {
                Instruction::s2r(reg(rng), SpecialReg::from_selector(rng.below(5) as i64).unwrap())
            }
            1 => Instruction::isetp(
                PredReg(rng.below(8) as u8),
                reg(rng),
                CmpOp::decode(rng.below(6) as i32).unwrap(),
                reg(rng),
            ),
            2 => Instruction::bra(rng.next_u32() as i32),
            3 => Instruction::bar(),
            4 => Instruction::exit(),
            5 => Instruction::nop(),
            6 => Instruction::ffma(reg(rng), reg(rng), reg(rng), reg(rng)),
            _ => {
                Instruction::ldc(reg(rng), rng.below(128) as u8, rng.next_u32() as u16, width(rng))
            }
        },
    }
}

fn needs_two_imm_slots(ins: &Instruction) -> bool {
    let imm_like =
        ins.srcs.iter().filter(|s| matches!(s, Operand::Imm(_) | Operand::Const { .. })).count();
    let mem_imm = usize::from(ins.mem.is_some() && ins.opcode != Opcode::Ldc);
    imm_like + mem_imm > 1
}

#[test]
fn encode_decode_round_trips() {
    let mut rng = SplitMix64::new(0xC0DEC);
    for case in 0..2000 {
        let ins = instruction(&mut rng);
        let cc = *rng.choose(&CCS);
        match Microcode::encode(&ins, cc) {
            Ok(word) => {
                let back = word.decode(cc).expect("decode of valid encode");
                assert_eq!(back, ins, "case {case}");
            }
            Err(lmi_isa::CodecError::ImmediateFieldConflict) => {
                assert!(needs_two_imm_slots(&ins), "case {case}: spurious conflict for {ins}");
            }
            Err(e) => panic!("case {case}: unexpected encode error {e} for {ins}"),
        }
    }
}

#[test]
fn hint_bits_never_leak_into_other_fields() {
    let mut rng = SplitMix64::new(0x41B175);
    for case in 0..500 {
        let dst = pair_base(&mut rng);
        let src = pair_base(&mut rng);
        let off = rng.next_u32() as i32;
        let cc = *rng.choose(&CCS);
        let plain = Instruction::iadd64(dst, src, off);
        let marked = plain.clone().with_hints(HintBits::check_operand(1));
        let w_plain = Microcode::encode(&plain, cc).unwrap();
        let w_marked = Microcode::encode(&marked, cc).unwrap();
        // The encodings differ exactly in bits 27/28.
        assert_eq!(w_plain.0 ^ w_marked.0, (1u128 << 27) | (1u128 << 28), "case {case}");
        assert!(w_plain.check_reserved(cc).is_ok(), "case {case}");
        assert!(w_marked.check_reserved(cc).is_ok(), "case {case}");
    }
}

#[test]
fn decode_of_arbitrary_bits_never_panics() {
    let mut rng = SplitMix64::new(0xDEC0DE);
    for _ in 0..5000 {
        let raw = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
        let cc = *rng.choose(&CCS);
        let _ = Microcode(raw).decode(cc);
    }
}
