//! Property tests for the pointer codec and the OCU.
//!
//! The central soundness claim of LMI is *correct by construction*: any
//! pointer update that stays inside the 2ⁿ-aligned region passes the OCU,
//! and any update that leaves it (or tampers with the metadata) poisons the
//! pointer so the EC faults the next dereference.

use lmi_core::ocu::reference_in_region;
use lmi_core::ptr::EXTENT_SHIFT;
use lmi_core::{DevicePtr, ExtentChecker, Ocu, OcuOutcome, PairOcu, PtrConfig};
use proptest::prelude::*;

fn cfg() -> PtrConfig {
    PtrConfig::default()
}

/// An arbitrary valid allocation: aligned base + size class.
fn arb_alloc() -> impl Strategy<Value = (u64, u64)> {
    // Extents 1..=20 keep sizes ≤ 128 MiB so address math stays easy.
    (1u8..=20, 0u64..(1 << 30)).prop_map(move |(extent, slot)| {
        let size = cfg().size_for_extent(extent).unwrap();
        let base = (slot % 1024) * (1u64 << 28) + (slot / 1024) * size;
        let base = base & !(size - 1);
        (base, size)
    })
}

proptest! {
    #[test]
    fn encode_preserves_address_and_size((base, size) in arb_alloc()) {
        let c = cfg();
        let p = DevicePtr::encode(base, size, &c).unwrap();
        prop_assert_eq!(p.addr(), base);
        prop_assert_eq!(p.size(&c), Some(size));
        prop_assert_eq!(p.base(&c), Some(base));
    }

    #[test]
    fn in_bounds_offsets_always_pass((base, size) in arb_alloc(), frac in 0.0f64..1.0) {
        let c = cfg();
        let ocu = Ocu::new(c);
        let p = DevicePtr::encode(base, size, &c).unwrap().raw();
        let delta = (frac * size as f64) as u64 % size;
        let (out, outcome) = ocu.check_marked(p, p + delta);
        prop_assert_eq!(outcome, OcuOutcome::Pass);
        prop_assert_eq!(out, p + delta);
        prop_assert!(ExtentChecker::new(c).check_access(out).is_ok());
    }

    #[test]
    fn escapes_always_poison((base, size) in arb_alloc(), extra in 1u64..(1 << 20)) {
        let c = cfg();
        let ocu = Ocu::new(c);
        let p = DevicePtr::encode(base, size, &c).unwrap().raw();
        let (out, outcome) = ocu.check_marked(p, p + size + extra - 1);
        prop_assert_eq!(outcome, OcuOutcome::Poisoned);
        prop_assert!(ExtentChecker::new(c).check_access(out).is_err());
    }

    #[test]
    fn ocu_matches_reference_judgment((base, size) in arb_alloc(), delta in -(1i64 << 22)..(1i64 << 22)) {
        let c = cfg();
        let ocu = Ocu::new(c);
        let p = DevicePtr::encode(base, size, &c).unwrap().raw();
        let result = p.wrapping_add(delta as u64);
        let (_, outcome) = ocu.check_marked(p, result);
        let reference = reference_in_region(p, result, &c);
        prop_assert_eq!(outcome == OcuOutcome::Pass, reference,
            "base={:#x} size={} delta={}", base, size, delta);
    }

    #[test]
    fn base_recovery_is_stable_under_in_bounds_walks(
        (base, size) in arb_alloc(),
        steps in proptest::collection::vec(0u64..4096, 1..20),
    ) {
        let c = cfg();
        let ocu = Ocu::new(c);
        let mut p = DevicePtr::encode(base, size, &c).unwrap().raw();
        for step in steps {
            let target = base + (step % size);
            let (next, outcome) = ocu.check_marked(p, (p & !(size - 1)) + (target - base));
            prop_assert!(outcome.passed());
            p = next;
            prop_assert_eq!(DevicePtr::from_raw(p).base(&c), Some(base));
        }
    }

    #[test]
    fn extent_tampering_is_always_poisoned((base, size) in arb_alloc(), bit in 0u32..5) {
        let c = cfg();
        let ocu = Ocu::new(c);
        let p = DevicePtr::encode(base, size, &c).unwrap().raw();
        let forged = p ^ (1u64 << (EXTENT_SHIFT + bit));
        let (_, outcome) = ocu.check_marked(p, forged);
        prop_assert_eq!(outcome, OcuOutcome::Poisoned);
    }

    #[test]
    fn pair_ocu_is_equivalent_to_the_fused_ocu(
        (base, size) in arb_alloc(),
        delta in -(1i64 << 34)..(1i64 << 34),
    ) {
        // The two-physical-register datapath (Fig. 6) must reach the same
        // verdict and write back the same pointer as the fused 64-bit model.
        let c = cfg();
        let fused = Ocu::new(c);
        let pair = PairOcu::new(c);
        let p = DevicePtr::encode(base, size, &c).unwrap().raw();
        let (fused_out, fused_outcome) = fused.check_marked(p, p.wrapping_add(delta as u64));
        let (pair_out, pair_outcome) = pair.check_update(p, delta);
        prop_assert_eq!(pair_outcome, fused_outcome, "delta {}", delta);
        prop_assert_eq!(pair_out, fused_out, "delta {}", delta);
    }

    #[test]
    fn split_round_trips(raw in any::<u64>()) {
        let p = DevicePtr::from_raw(raw);
        let (lo, hi) = p.split();
        prop_assert_eq!(DevicePtr::from_parts(lo, hi), p);
    }

    #[test]
    fn round_up_is_minimal_power_of_two(size in 1u64..(1 << 30)) {
        let c = cfg();
        let rounded = c.round_up(size).unwrap();
        prop_assert!(rounded.is_power_of_two());
        prop_assert!(rounded >= size.max(c.min_align()));
        if rounded > c.min_align() {
            prop_assert!(rounded / 2 < size, "not minimal: {size} -> {rounded}");
        }
    }
}
