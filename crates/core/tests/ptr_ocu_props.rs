//! Randomized property tests for the pointer codec and the OCU.
//!
//! The central soundness claim of LMI is *correct by construction*: any
//! pointer update that stays inside the 2ⁿ-aligned region passes the OCU,
//! and any update that leaves it (or tampers with the metadata) poisons the
//! pointer so the EC faults the next dereference.
//!
//! Seeded SplitMix64 (from `lmi-telemetry`) replaces the external property
//! framework; failures print the case inputs and reproduce exactly.

use lmi_core::ocu::reference_in_region;
use lmi_core::ptr::EXTENT_SHIFT;
use lmi_core::{DevicePtr, ExtentChecker, Ocu, OcuOutcome, PairOcu, PtrConfig};
use lmi_telemetry::SplitMix64;

fn cfg() -> PtrConfig {
    PtrConfig::default()
}

/// An arbitrary valid allocation: aligned base + size class.
/// Extents 1..=20 keep sizes ≤ 128 MiB so address math stays easy.
fn alloc(rng: &mut SplitMix64) -> (u64, u64) {
    let extent = rng.range(1, 21) as u8;
    let slot = rng.below(1 << 30);
    let size = cfg().size_for_extent(extent).unwrap();
    let base = (slot % 1024) * (1u64 << 28) + (slot / 1024) * size;
    let base = base & !(size - 1);
    (base, size)
}

#[test]
fn encode_preserves_address_and_size() {
    let mut rng = SplitMix64::new(0xE4C0DE);
    for _ in 0..1000 {
        let (base, size) = alloc(&mut rng);
        let c = cfg();
        let p = DevicePtr::encode(base, size, &c).unwrap();
        assert_eq!(p.addr(), base);
        assert_eq!(p.size(&c), Some(size));
        assert_eq!(p.base(&c), Some(base));
    }
}

#[test]
fn in_bounds_offsets_always_pass() {
    let mut rng = SplitMix64::new(0x1B0);
    for _ in 0..1000 {
        let (base, size) = alloc(&mut rng);
        let c = cfg();
        let ocu = Ocu::new(c);
        let p = DevicePtr::encode(base, size, &c).unwrap().raw();
        let delta = rng.below(size);
        let (out, outcome) = ocu.check_marked(p, p + delta);
        assert_eq!(outcome, OcuOutcome::Pass, "base={base:#x} size={size} delta={delta}");
        assert_eq!(out, p + delta);
        assert!(ExtentChecker::new(c).check_access(out).is_ok());
    }
}

#[test]
fn escapes_always_poison() {
    let mut rng = SplitMix64::new(0xE5CA);
    for _ in 0..1000 {
        let (base, size) = alloc(&mut rng);
        let extra = rng.range(1, 1 << 20);
        let c = cfg();
        let ocu = Ocu::new(c);
        let p = DevicePtr::encode(base, size, &c).unwrap().raw();
        let (out, outcome) = ocu.check_marked(p, p + size + extra - 1);
        assert_eq!(outcome, OcuOutcome::Poisoned, "base={base:#x} size={size} extra={extra}");
        assert!(ExtentChecker::new(c).check_access(out).is_err());
    }
}

#[test]
fn ocu_matches_reference_judgment() {
    let mut rng = SplitMix64::new(0x0C0);
    for _ in 0..2000 {
        let (base, size) = alloc(&mut rng);
        let delta = rng.range_i64(-(1i64 << 22), 1i64 << 22);
        let c = cfg();
        let ocu = Ocu::new(c);
        let p = DevicePtr::encode(base, size, &c).unwrap().raw();
        let result = p.wrapping_add(delta as u64);
        let (_, outcome) = ocu.check_marked(p, result);
        let reference = reference_in_region(p, result, &c);
        assert_eq!(
            outcome == OcuOutcome::Pass,
            reference,
            "base={base:#x} size={size} delta={delta}"
        );
    }
}

#[test]
fn base_recovery_is_stable_under_in_bounds_walks() {
    let mut rng = SplitMix64::new(0xBA5E);
    for _ in 0..300 {
        let (base, size) = alloc(&mut rng);
        let c = cfg();
        let ocu = Ocu::new(c);
        let mut p = DevicePtr::encode(base, size, &c).unwrap().raw();
        for _ in 0..rng.range(1, 20) {
            let step = rng.below(4096);
            let target = base + (step % size);
            let (next, outcome) = ocu.check_marked(p, (p & !(size - 1)) + (target - base));
            assert!(outcome.passed(), "base={base:#x} size={size} step={step}");
            p = next;
            assert_eq!(DevicePtr::from_raw(p).base(&c), Some(base));
        }
    }
}

#[test]
fn extent_tampering_is_always_poisoned() {
    let mut rng = SplitMix64::new(0x7A3);
    for _ in 0..1000 {
        let (base, size) = alloc(&mut rng);
        let bit = rng.below(5) as u32;
        let c = cfg();
        let ocu = Ocu::new(c);
        let p = DevicePtr::encode(base, size, &c).unwrap().raw();
        let forged = p ^ (1u64 << (EXTENT_SHIFT + bit));
        let (_, outcome) = ocu.check_marked(p, forged);
        assert_eq!(outcome, OcuOutcome::Poisoned, "base={base:#x} size={size} bit={bit}");
    }
}

#[test]
fn pair_ocu_is_equivalent_to_the_fused_ocu() {
    // The two-physical-register datapath (Fig. 6) must reach the same
    // verdict and write back the same pointer as the fused 64-bit model.
    let mut rng = SplitMix64::new(0xFA12);
    for _ in 0..2000 {
        let (base, size) = alloc(&mut rng);
        let delta = rng.range_i64(-(1i64 << 34), 1i64 << 34);
        let c = cfg();
        let fused = Ocu::new(c);
        let pair = PairOcu::new(c);
        let p = DevicePtr::encode(base, size, &c).unwrap().raw();
        let (fused_out, fused_outcome) = fused.check_marked(p, p.wrapping_add(delta as u64));
        let (pair_out, pair_outcome) = pair.check_update(p, delta);
        assert_eq!(pair_outcome, fused_outcome, "base={base:#x} size={size} delta={delta}");
        assert_eq!(pair_out, fused_out, "base={base:#x} size={size} delta={delta}");
    }
}

#[test]
fn split_round_trips() {
    let mut rng = SplitMix64::new(0x5EC7);
    for _ in 0..2000 {
        let raw = rng.next_u64();
        let p = DevicePtr::from_raw(raw);
        let (lo, hi) = p.split();
        assert_eq!(DevicePtr::from_parts(lo, hi), p, "raw={raw:#x}");
    }
}

#[test]
fn round_up_is_minimal_power_of_two() {
    let mut rng = SplitMix64::new(0x20);
    for _ in 0..2000 {
        let size = rng.range(1, 1 << 30);
        let c = cfg();
        let rounded = c.round_up(size).unwrap();
        assert!(rounded.is_power_of_two());
        assert!(rounded >= size.max(c.min_align()));
        if rounded > c.min_align() {
            assert!(rounded / 2 < size, "not minimal: {size} -> {rounded}");
        }
    }
}
