//! The register-pair OCU: how the check decomposes on a real 32-bit GPU
//! datapath.
//!
//! Fig. 6 maps the 64-bit pointer onto *two 32-bit physical registers*, and
//! real SASS performs 64-bit pointer arithmetic as an `IADD` on the low
//! register followed by a carried `IADD.X` on the high register. The OCU
//! therefore sees two marked instructions per pointer update and checks
//! each half against the half of the address mask it owns:
//!
//! * **low half**: the low `min(n, 32)` bits are modifiable (`n = log2` of
//!   the buffer size); any change above them within the low word poisons;
//! * **high half**: the extent field and the UM bits live here; only the
//!   low `max(0, n − 32)` bits may change.
//!
//! [`PairOcu`] implements exactly that, and the property tests prove it
//! equivalent to the monolithic 64-bit [`crate::Ocu`] used by the
//! simulator's fused `IADD64` model.

use crate::ocu::OcuOutcome;
use crate::ptr::{DevicePtr, PoisonKind, PtrConfig};

/// Result of one half-word check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HalfCheck {
    /// The (possibly poisoned, for the high half) value to write back.
    pub value: u32,
    /// Whether this half detected a violation.
    pub violated: bool,
}

/// The per-thread OCU as synthesized for a 32-bit integer datapath.
#[derive(Debug, Clone, Copy)]
pub struct PairOcu {
    cfg: PtrConfig,
}

impl PairOcu {
    /// Creates a pair-checking OCU.
    pub fn new(cfg: PtrConfig) -> PairOcu {
        PairOcu { cfg }
    }

    fn size_log2(&self, extent: u8) -> Option<u32> {
        self.cfg.size_for_extent(extent).map(|s| s.trailing_zeros())
    }

    /// Checks the low-word `IADD`: `in_lo` is the selected input's low
    /// register, `out_lo` the ALU result, `extent` read from the paired
    /// high register (the operand-collector forwards it alongside).
    pub fn check_lo(&self, extent: u8, in_lo: u32, out_lo: u32) -> HalfCheck {
        let n = match self.size_log2(extent) {
            Some(n) => n,
            None => return HalfCheck { value: out_lo, violated: false }, // invalid propagates
        };
        let modifiable: u32 = if n >= 32 { u32::MAX } else { (1u32 << n) - 1 };
        let changed = in_lo ^ out_lo;
        HalfCheck { value: out_lo, violated: changed & !modifiable != 0 }
    }

    /// Checks the high-word `IADD.X` and applies poisoning (the extent
    /// lives in this register). `lo_violated` carries the low half's
    /// verdict so the poison covers both.
    pub fn check_hi(&self, in_hi: u32, out_hi: u32, lo_violated: bool) -> HalfCheck {
        let extent = (in_hi >> 27) as u8;
        let n = match self.size_log2(extent) {
            Some(n) => n,
            None => return HalfCheck { value: out_hi, violated: false },
        };
        let modifiable: u32 = if n <= 32 { 0 } else { (1u32 << (n - 32)) - 1 };
        let changed = in_hi ^ out_hi;
        let violated = lo_violated || changed & !modifiable != 0;
        if violated {
            // Clear or debug-stamp the extent field in the written-back
            // high register — the pair-datapath version of poisoning.
            let addr_bits = out_hi & 0x07FF_FFFF;
            let value = match self.cfg.debug_extent(PoisonKind::SpatialViolation) {
                Some(code) => addr_bits | ((code as u32) << 27),
                None => addr_bits,
            };
            HalfCheck { value, violated: true }
        } else {
            HalfCheck { value: out_hi, violated: false }
        }
    }

    /// Convenience: checks a whole pointer update expressed as the two-
    /// instruction SASS sequence (`IADD lo` + `IADD.X hi`), returning the
    /// written-back pointer and the fused outcome.
    pub fn check_update(&self, input: u64, delta: i64) -> (u64, OcuOutcome) {
        let in_ptr = DevicePtr::from_raw(input);
        let (in_lo, in_hi) = in_ptr.split();
        if !self.cfg.extent_is_size(in_ptr.extent()) {
            let result = input.wrapping_add(delta as u64);
            return (result, OcuOutcome::PropagateInvalid);
        }
        // The ALU pair: low add produces the carry consumed by the high add.
        let (d_lo, d_hi) = (delta as u64 as u32, ((delta as u64) >> 32) as u32);
        let (out_lo, carry) = in_lo.overflowing_add(d_lo);
        let out_hi = in_hi.wrapping_add(d_hi).wrapping_add(carry as u32);

        let lo = self.check_lo(in_ptr.extent(), in_lo, out_lo);
        let hi = self.check_hi(in_hi, out_hi, lo.violated);
        let raw = DevicePtr::from_parts(lo.value, hi.value).raw();
        if hi.violated {
            (raw, OcuOutcome::Poisoned)
        } else {
            (raw, OcuOutcome::Pass)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ocu::Ocu;

    fn cfg() -> PtrConfig {
        PtrConfig::default()
    }

    fn ptr(addr: u64, size: u64) -> u64 {
        DevicePtr::encode(addr, size, &cfg()).unwrap().raw()
    }

    #[test]
    fn in_bounds_updates_pass_both_halves() {
        let ocu = PairOcu::new(cfg());
        let p = ptr(0x4_0000, 1024);
        for delta in [0i64, 4, 1020, -0] {
            let (out, outcome) = ocu.check_update(p, delta);
            assert_eq!(outcome, OcuOutcome::Pass, "delta {delta}");
            assert_eq!(out, p.wrapping_add(delta as u64));
        }
    }

    #[test]
    fn low_word_escape_is_caught_by_the_low_check() {
        let ocu = PairOcu::new(cfg());
        let p = ptr(0x4_0000, 1024);
        let (out, outcome) = ocu.check_update(p, 1024);
        assert_eq!(outcome, OcuOutcome::Poisoned);
        assert_eq!(DevicePtr::from_raw(out).extent(), 0);
    }

    #[test]
    fn carry_into_the_high_word_is_caught() {
        // A buffer close to a 4 GiB boundary: the low add wraps, the carry
        // flips a high-word UM bit — only the high check can see it.
        let base = (1u64 << 32) - 4096; // 4096-aligned below the boundary
        let p = ptr(base, 4096);
        let ocu = PairOcu::new(cfg());
        let (_, outcome) = ocu.check_update(p, 4096);
        assert_eq!(outcome, OcuOutcome::Poisoned);
    }

    #[test]
    fn buffers_larger_than_4gib_modify_high_bits_legally() {
        let cfg = cfg();
        let ocu = PairOcu::new(cfg);
        // An 8 GiB buffer: bit 32 of the address is modifiable.
        let size = 8u64 << 30;
        let p = DevicePtr::encode(size, size, &cfg).unwrap().raw(); // base = 8 GiB
        let (_, outcome) = ocu.check_update(p, 1i64 << 32);
        assert_eq!(outcome, OcuOutcome::Pass, "in-bounds high-word change");
        let (_, outcome) = ocu.check_update(p, size as i64);
        assert_eq!(outcome, OcuOutcome::Poisoned, "escape still caught");
    }

    #[test]
    fn invalid_pointers_propagate() {
        let ocu = PairOcu::new(cfg());
        let dead = DevicePtr::encode(0x4_0000, 256, &cfg()).unwrap().invalidated();
        let (_, outcome) = ocu.check_update(dead.raw(), 8);
        assert_eq!(outcome, OcuOutcome::PropagateInvalid);
    }

    #[test]
    fn pair_ocu_matches_the_fused_ocu_on_a_sweep() {
        let cfg = cfg();
        let fused = Ocu::new(cfg);
        let pair = PairOcu::new(cfg);
        let p = ptr(0x10_0000, 4096);
        for delta in (-10_000i64..10_000).step_by(37) {
            let (fused_out, fused_outcome) = fused.check_marked(p, p.wrapping_add(delta as u64));
            let (pair_out, pair_outcome) = pair.check_update(p, delta);
            assert_eq!(pair_outcome, fused_outcome, "delta {delta}");
            assert_eq!(pair_out, fused_out, "delta {delta}");
        }
    }
}
