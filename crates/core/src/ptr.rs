//! The LMI 64-bit pointer format (paper Fig. 6 and §IV-A, §V-A).
//!
//! ```text
//!  63       59 58                    n n-1           0
//! +-----------+----------------------+----------------+
//! |  Extent   |  Unmodifiable (UM)   | Modifiable (M) |
//! +-----------+----------------------+----------------+
//!               n = log2(buffer size)
//! ```
//!
//! The extent field encodes the buffer size in power-of-two exponential form:
//! with minimum allocation size `K = 256` (the default GPU allocation
//! granularity), extent value `E` means a buffer of `2^(E - 1 + log2 K)`
//! bytes, so `E = 1` is 256 B and `E = 31` is 256 GiB. Extent 0 marks an
//! *invalid* pointer: freshly freed, poisoned by the OCU, or never derived
//! from an allocation.

use std::fmt;

/// Number of bits in the extent field.
pub const EXTENT_BITS: u32 = 5;

/// Bit position of the extent field's least significant bit.
pub const EXTENT_SHIFT: u32 = 64 - EXTENT_BITS; // 59

/// Mask covering the extent field in a raw pointer.
pub const EXTENT_MASK: u64 = 0x1F << EXTENT_SHIFT;

/// Mask covering the address bits (everything below the extent field).
pub const ADDR_MASK: u64 = (1u64 << EXTENT_SHIFT) - 1;

/// Maximum encodable extent value (`2^5 - 1`).
pub const MAX_EXTENT: u8 = 31;

/// Errors from pointer encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtrError {
    /// The requested size exceeds the configured device limit
    /// (`cudaDeviceSetLimit`-style cap, paper §IV-A3).
    SizeTooLarge {
        /// The rejected allocation size.
        size: u64,
        /// The configured maximum.
        limit: u64,
    },
    /// The address is not aligned to the buffer's power-of-two size — an
    /// LMI allocator bug, since 2ⁿ alignment is what makes base-address
    /// recovery work (§IV-A1).
    Misaligned {
        /// The unaligned base address.
        addr: u64,
        /// The required alignment.
        align: u64,
    },
    /// The address has bits in the extent field already set.
    AddressTooHigh(u64),
}

impl fmt::Display for PtrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtrError::SizeTooLarge { size, limit } => {
                write!(f, "allocation of {size} bytes exceeds device limit {limit}")
            }
            PtrError::Misaligned { addr, align } => {
                write!(f, "address {addr:#x} is not {align}-byte aligned")
            }
            PtrError::AddressTooHigh(a) => write!(f, "address {a:#x} overlaps the extent field"),
        }
    }
}

impl std::error::Error for PtrError {}

/// Configuration of the pointer encoding.
///
/// `min_align_log2` is `log2 K` — the minimum allocation size whose extent
/// encodes as 1. The paper selects `K = 256` to match the default GPU
/// allocation granularity. `max_size_log2` caps practical buffer sizes
/// (paper §IV-A3: device limits prevent unrealistically large buffers, and
/// extent values above the cap are repurposed for debugging information).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtrConfig {
    /// `log2` of the minimum allocation size `K` (default 8, i.e. 256 B).
    pub min_align_log2: u32,
    /// `log2` of the maximum allowed buffer size (default 38, i.e. 256 GiB).
    pub max_size_log2: u32,
}

impl Default for PtrConfig {
    fn default() -> Self {
        PtrConfig { min_align_log2: 8, max_size_log2: 38 }
    }
}

impl PtrConfig {
    /// A configuration with a tighter device limit, freeing high extent
    /// values for debug codes (paper §IV-A3).
    pub fn with_device_limit_log2(max_size_log2: u32) -> PtrConfig {
        PtrConfig { max_size_log2, ..PtrConfig::default() }
    }

    /// The minimum allocation size `K` in bytes.
    pub fn min_align(&self) -> u64 {
        1u64 << self.min_align_log2
    }

    /// The maximum allocation size in bytes.
    pub fn max_size(&self) -> u64 {
        1u64 << self.max_size_log2
    }

    /// The extent value encoding a buffer of `size` bytes
    /// (paper §V-A1: `E = ceil(max(log2 K, log2 S)) - log2 K + 1`).
    ///
    /// # Errors
    ///
    /// Returns [`PtrError::SizeTooLarge`] if `size` exceeds the device limit.
    pub fn extent_for_size(&self, size: u64) -> Result<u8, PtrError> {
        if size > self.max_size() {
            return Err(PtrError::SizeTooLarge { size, limit: self.max_size() });
        }
        let size = size.max(1);
        let log = 64 - (size - 1).leading_zeros(); // ceil(log2(size)), 0 for size 1
        let log = log.max(self.min_align_log2);
        Ok((log - self.min_align_log2 + 1) as u8)
    }

    /// The buffer size encoded by `extent`, or `None` for extent 0
    /// (invalid) or extents beyond the device limit (debug codes).
    pub fn size_for_extent(&self, extent: u8) -> Option<u64> {
        if extent == 0 || !self.extent_is_size(extent) {
            return None;
        }
        Some(1u64 << (extent as u32 - 1 + self.min_align_log2))
    }

    /// The largest extent value that encodes a real size under the device
    /// limit; larger values are debug codes.
    pub fn max_size_extent(&self) -> u8 {
        (self.max_size_log2 - self.min_align_log2 + 1) as u8
    }

    /// Returns `true` if `extent` encodes a real buffer size.
    pub fn extent_is_size(&self, extent: u8) -> bool {
        extent >= 1 && extent <= self.max_size_extent()
    }

    /// The extent value used to stamp a poisoned pointer with `kind`, if the
    /// device limit leaves spare encodings; otherwise `None` and poisoning
    /// falls back to extent 0.
    pub fn debug_extent(&self, kind: PoisonKind) -> Option<u8> {
        let code = MAX_EXTENT - kind as u8;
        (code > self.max_size_extent()).then_some(code)
    }

    /// Decodes a debug extent back to its [`PoisonKind`].
    pub fn poison_kind(&self, extent: u8) -> Option<PoisonKind> {
        if extent == 0 || self.extent_is_size(extent) {
            return None;
        }
        PoisonKind::from_code(MAX_EXTENT - extent)
    }

    /// Rounds `size` up to the representable power-of-two allocation size.
    ///
    /// # Errors
    ///
    /// Returns [`PtrError::SizeTooLarge`] if `size` exceeds the device limit.
    pub fn round_up(&self, size: u64) -> Result<u64, PtrError> {
        let extent = self.extent_for_size(size)?;
        Ok(self.size_for_extent(extent).expect("extent from extent_for_size is a size"))
    }
}

/// Debug information encodable in spare extent values (paper §IV-A3:
/// "extent values that exceed practical buffer sizes can be repurposed to
/// encode debugging information, such as error types").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoisonKind {
    /// The OCU detected out-of-bounds pointer arithmetic.
    SpatialViolation = 0,
    /// The pointer's buffer was freed (temporal violation pending).
    TemporalViolation = 1,
}

impl PoisonKind {
    fn from_code(code: u8) -> Option<PoisonKind> {
        match code {
            0 => Some(PoisonKind::SpatialViolation),
            1 => Some(PoisonKind::TemporalViolation),
            _ => None,
        }
    }
}

/// A 64-bit LMI pointer: extent metadata plus a virtual address.
///
/// `DevicePtr` is a transparent wrapper over the raw `u64` that flows through
/// registers; [`DevicePtr::raw`] recovers the register value and
/// [`DevicePtr::split`] maps it onto the two 32-bit physical registers of
/// paper Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct DevicePtr(u64);

impl DevicePtr {
    /// The null pointer (extent 0, address 0).
    pub const NULL: DevicePtr = DevicePtr(0);

    /// Wraps a raw register value without validation.
    pub fn from_raw(raw: u64) -> DevicePtr {
        DevicePtr(raw)
    }

    /// Encodes a pointer to a buffer of `size` bytes at `addr`.
    ///
    /// `addr` must already be aligned to the rounded-up power-of-two size —
    /// producing aligned addresses is the allocator's job (paper §V-B).
    ///
    /// # Errors
    ///
    /// * [`PtrError::SizeTooLarge`] if `size` exceeds the device limit;
    /// * [`PtrError::Misaligned`] if `addr` is not aligned to the rounded
    ///   size;
    /// * [`PtrError::AddressTooHigh`] if `addr` has bits in the extent field.
    pub fn encode(addr: u64, size: u64, cfg: &PtrConfig) -> Result<DevicePtr, PtrError> {
        if addr & !ADDR_MASK != 0 {
            return Err(PtrError::AddressTooHigh(addr));
        }
        let extent = cfg.extent_for_size(size)?;
        let aligned_size = cfg.size_for_extent(extent).expect("valid extent");
        if addr & (aligned_size - 1) != 0 {
            return Err(PtrError::Misaligned { addr, align: aligned_size });
        }
        Ok(DevicePtr(addr | ((extent as u64) << EXTENT_SHIFT)))
    }

    /// The raw 64-bit register value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The extent field (bits 63–59).
    pub fn extent(self) -> u8 {
        ((self.0 & EXTENT_MASK) >> EXTENT_SHIFT) as u8
    }

    /// The virtual address (extent bits stripped) — what the LSU sends to
    /// the memory system after the EC check.
    pub fn addr(self) -> u64 {
        self.0 & ADDR_MASK
    }

    /// Returns `true` if the extent encodes a real size (the pointer is
    /// dereferenceable).
    pub fn is_valid(self, cfg: &PtrConfig) -> bool {
        cfg.extent_is_size(self.extent())
    }

    /// The buffer size, if the pointer is valid.
    pub fn size(self, cfg: &PtrConfig) -> Option<u64> {
        cfg.size_for_extent(self.extent())
    }

    /// Recovers the buffer's base address from the pointer alone
    /// (paper §IV-A1: with 2ⁿ alignment, `base = ptr & !(size - 1)` no
    /// matter how much arithmetic the pointer has been through).
    pub fn base(self, cfg: &PtrConfig) -> Option<u64> {
        self.size(cfg).map(|s| self.addr() & !(s - 1))
    }

    /// The unmodifiable (UM) bits: the address bits above the modifiable
    /// region. Because only one live buffer can occupy a given aligned
    /// region, the UM bits uniquely identify a buffer — the property the
    /// §XII-C liveness tracker exploits.
    pub fn um_bits(self, cfg: &PtrConfig) -> Option<u64> {
        self.size(cfg).map(|s| self.addr() >> s.trailing_zeros())
    }

    /// The mask of modifiable address bits (`size - 1`).
    pub fn modifiable_mask(self, cfg: &PtrConfig) -> Option<u64> {
        self.size(cfg).map(|s| s - 1)
    }

    /// Returns `true` if `addr` lies within the pointer's buffer.
    pub fn contains(self, addr: u64, cfg: &PtrConfig) -> bool {
        match (self.base(cfg), self.size(cfg)) {
            (Some(base), Some(size)) => addr >= base && addr < base + size,
            _ => false,
        }
    }

    /// Clears the extent field, invalidating the pointer (used by `free`,
    /// scope exit, and OCU poisoning).
    pub fn invalidated(self) -> DevicePtr {
        DevicePtr(self.0 & ADDR_MASK)
    }

    /// Stamps the pointer with a debug poison code if the configuration has
    /// spare extents, else clears the extent.
    pub fn poisoned(self, kind: PoisonKind, cfg: &PtrConfig) -> DevicePtr {
        match cfg.debug_extent(kind) {
            Some(code) => DevicePtr(self.addr() | ((code as u64) << EXTENT_SHIFT)),
            None => self.invalidated(),
        }
    }

    /// Splits into the two 32-bit physical registers of paper Fig. 6:
    /// `(low word, high word)`; the high word carries the extent.
    pub fn split(self) -> (u32, u32) {
        (self.0 as u32, (self.0 >> 32) as u32)
    }

    /// Rebuilds a pointer from its two 32-bit physical registers.
    pub fn from_parts(lo: u32, hi: u32) -> DevicePtr {
        DevicePtr(((hi as u64) << 32) | lo as u64)
    }

    /// Pointer arithmetic as the integer ALU performs it: a plain 64-bit
    /// add on the raw register value (no checking — that is the OCU's job).
    pub fn wrapping_offset(self, delta: i64) -> DevicePtr {
        DevicePtr(self.0.wrapping_add(delta as u64))
    }
}

impl fmt::Display for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ptr[E={} a={:#x}]", self.extent(), self.addr())
    }
}

impl fmt::LowerHex for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_encoding_matches_paper_examples() {
        let cfg = PtrConfig::default();
        // K = 256 encodes as 1 …
        assert_eq!(cfg.extent_for_size(256).unwrap(), 1);
        assert_eq!(cfg.extent_for_size(1).unwrap(), 1, "sub-K sizes round to K");
        assert_eq!(cfg.extent_for_size(257).unwrap(), 2);
        assert_eq!(cfg.extent_for_size(512).unwrap(), 2);
        // … and 256 GiB encodes as 31 (paper §IV-A3).
        assert_eq!(cfg.extent_for_size(1u64 << 38).unwrap(), 31);
        assert!(cfg.extent_for_size((1u64 << 38) + 1).is_err());
    }

    #[test]
    fn size_for_extent_inverts_extent_for_size() {
        let cfg = PtrConfig::default();
        for extent in 1..=31u8 {
            let size = cfg.size_for_extent(extent).unwrap();
            assert_eq!(cfg.extent_for_size(size).unwrap(), extent);
        }
        assert_eq!(cfg.size_for_extent(0), None);
    }

    #[test]
    fn base_recovery_example_from_paper() {
        // Paper §IV-A1: pointer 0x12345678 into a 256 B buffer has base
        // 0x12345600, and still does after moving to 0x1234567F.
        let cfg = PtrConfig::default();
        let p = DevicePtr::encode(0x1234_5600, 256, &cfg).unwrap();
        let moved = p.wrapping_offset(0x78);
        assert_eq!(moved.addr(), 0x1234_5678);
        assert_eq!(moved.base(&cfg), Some(0x1234_5600));
        let moved = p.wrapping_offset(0x7F);
        assert_eq!(moved.base(&cfg), Some(0x1234_5600));
    }

    #[test]
    fn misaligned_and_oversized_addresses_rejected() {
        let cfg = PtrConfig::default();
        assert_eq!(
            DevicePtr::encode(0x100, 512, &cfg),
            Err(PtrError::Misaligned { addr: 0x100, align: 512 })
        );
        let high = 1u64 << 60;
        assert_eq!(DevicePtr::encode(high, 256, &cfg), Err(PtrError::AddressTooHigh(high)));
    }

    #[test]
    fn invalidation_clears_extent_only() {
        let cfg = PtrConfig::default();
        let p = DevicePtr::encode(0x4000, 1024, &cfg).unwrap();
        let dead = p.invalidated();
        assert_eq!(dead.extent(), 0);
        assert_eq!(dead.addr(), 0x4000);
        assert!(!dead.is_valid(&cfg));
    }

    #[test]
    fn split_matches_fig6_register_mapping() {
        let cfg = PtrConfig::default();
        let p = DevicePtr::encode(0x1_0000_0000, 256, &cfg).unwrap();
        let (lo, hi) = p.split();
        assert_eq!(DevicePtr::from_parts(lo, hi), p);
        // The extent lives entirely in the high register.
        assert_eq!(hi >> (EXTENT_SHIFT - 32), p.extent() as u32);
    }

    #[test]
    fn um_bits_identify_the_buffer() {
        let cfg = PtrConfig::default();
        let a = DevicePtr::encode(0x10000, 4096, &cfg).unwrap();
        let b = DevicePtr::encode(0x11000, 4096, &cfg).unwrap();
        assert_ne!(a.um_bits(&cfg), b.um_bits(&cfg));
        // Moving inside the buffer does not change the UM bits.
        assert_eq!(a.wrapping_offset(4095).um_bits(&cfg), a.um_bits(&cfg));
    }

    #[test]
    fn contains_covers_exactly_the_aligned_region() {
        let cfg = PtrConfig::default();
        let p = DevicePtr::encode(0x2000, 1024, &cfg).unwrap();
        assert!(p.contains(0x2000, &cfg));
        assert!(p.contains(0x23FF, &cfg));
        assert!(!p.contains(0x2400, &cfg));
        assert!(!p.contains(0x1FFF, &cfg));
    }

    #[test]
    fn debug_extents_need_a_device_limit() {
        let default_cfg = PtrConfig::default();
        assert_eq!(default_cfg.debug_extent(PoisonKind::SpatialViolation), None);

        // Capping buffers at 16 GiB (2^34) leaves extents 28–31 spare.
        let cfg = PtrConfig::with_device_limit_log2(34);
        assert_eq!(cfg.max_size_extent(), 27);
        let spatial = cfg.debug_extent(PoisonKind::SpatialViolation).unwrap();
        let temporal = cfg.debug_extent(PoisonKind::TemporalViolation).unwrap();
        assert_eq!(spatial, 31);
        assert_eq!(temporal, 30);
        assert_eq!(cfg.poison_kind(spatial), Some(PoisonKind::SpatialViolation));
        assert_eq!(cfg.poison_kind(temporal), Some(PoisonKind::TemporalViolation));
        assert_eq!(cfg.poison_kind(5), None);
    }

    #[test]
    fn poisoned_pointer_reports_its_kind() {
        let cfg = PtrConfig::with_device_limit_log2(34);
        let p = DevicePtr::encode(0x4000, 1024, &cfg).unwrap();
        let bad = p.poisoned(PoisonKind::SpatialViolation, &cfg);
        assert!(!bad.is_valid(&cfg));
        assert_eq!(cfg.poison_kind(bad.extent()), Some(PoisonKind::SpatialViolation));
        // Without spare extents, poisoning degrades to extent 0.
        let cfg = PtrConfig::default();
        let p = DevicePtr::encode(0x4000, 1024, &cfg).unwrap();
        assert_eq!(p.poisoned(PoisonKind::SpatialViolation, &cfg).extent(), 0);
    }

    #[test]
    fn round_up_is_monotone_power_of_two() {
        let cfg = PtrConfig::default();
        assert_eq!(cfg.round_up(1).unwrap(), 256);
        assert_eq!(cfg.round_up(256).unwrap(), 256);
        assert_eq!(cfg.round_up(300).unwrap(), 512);
        assert_eq!(cfg.round_up(4097).unwrap(), 8192);
    }
}
