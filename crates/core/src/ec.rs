//! The Extent Checker (EC) in the load/store unit.
//!
//! The EC completes LMI's *delayed termination* design (paper §XII-A): the
//! OCU never faults on pointer arithmetic — it only poisons the extent — and
//! the EC faults a pointer **only when it is actually dereferenced**. This
//! avoids false positives from the ubiquitous `ptr != end` loop idiom, where
//! the final iteration leaves `ptr` one element past the buffer without ever
//! accessing it (paper Fig. 14).
//!
//! The EC also strips the extent bits off the address before it is sent to
//! the memory system, since the extent field is metadata, not part of the
//! virtual address.

use crate::error::{TemporalKind, Violation};
use crate::ptr::{DevicePtr, PoisonKind, PtrConfig};

/// The LSU-side extent checker.
#[derive(Debug, Clone, Copy)]
pub struct ExtentChecker {
    cfg: PtrConfig,
}

impl ExtentChecker {
    /// Creates a checker for the given pointer format.
    pub fn new(cfg: PtrConfig) -> ExtentChecker {
        ExtentChecker { cfg }
    }

    /// Validates a raw pointer at dereference time.
    ///
    /// Returns the virtual address to access (extent stripped) on success.
    ///
    /// # Errors
    ///
    /// * extent 0 → [`Violation::InvalidPointer`] (the pointer was never
    ///   valid, was freed, or was poisoned on a configuration without spare
    ///   debug extents);
    /// * a debug-coded extent → the recorded violation kind
    ///   ([`Violation::Spatial`] or [`Violation::Temporal`]).
    pub fn check_access(&self, raw: u64) -> Result<u64, Violation> {
        let p = DevicePtr::from_raw(raw);
        let extent = p.extent();
        if self.cfg.extent_is_size(extent) {
            return Ok(p.addr());
        }
        match self.cfg.poison_kind(extent) {
            Some(PoisonKind::SpatialViolation) => Err(Violation::Spatial { addr: p.addr() }),
            Some(PoisonKind::TemporalViolation) => {
                Err(Violation::Temporal(TemporalKind::UseAfterFree))
            }
            None => Err(Violation::InvalidPointer { raw }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ocu::Ocu;

    #[test]
    fn valid_pointer_passes_and_strips_extent() {
        let cfg = PtrConfig::default();
        let ec = ExtentChecker::new(cfg);
        let p = DevicePtr::encode(0x8000, 512, &cfg).unwrap();
        assert_eq!(ec.check_access(p.raw()), Ok(0x8000));
        assert_eq!(ec.check_access(p.wrapping_offset(100).raw()), Ok(0x8000 + 100));
    }

    #[test]
    fn zero_extent_faults() {
        let cfg = PtrConfig::default();
        let ec = ExtentChecker::new(cfg);
        let dead = DevicePtr::encode(0x8000, 512, &cfg).unwrap().invalidated();
        assert_eq!(ec.check_access(dead.raw()), Err(Violation::InvalidPointer { raw: dead.raw() }));
    }

    #[test]
    fn debug_codes_report_their_kind() {
        let cfg = PtrConfig::with_device_limit_log2(34);
        let ec = ExtentChecker::new(cfg);
        let p = DevicePtr::encode(0x8000, 512, &cfg).unwrap();
        let spatial = p.poisoned(PoisonKind::SpatialViolation, &cfg);
        assert_eq!(ec.check_access(spatial.raw()), Err(Violation::Spatial { addr: 0x8000 }));
        let temporal = p.poisoned(PoisonKind::TemporalViolation, &cfg);
        assert_eq!(
            ec.check_access(temporal.raw()),
            Err(Violation::Temporal(TemporalKind::UseAfterFree))
        );
    }

    #[test]
    fn delayed_termination_loop_idiom_has_no_false_positive() {
        // Paper Fig. 14: ptr walks one past the end but is never
        // dereferenced there — no error may be raised.
        let cfg = PtrConfig::default();
        let ocu = Ocu::new(cfg);
        let ec = ExtentChecker::new(cfg);
        // A buffer that exactly fills its 2^n region, walked 4 B at a time.
        let start = DevicePtr::encode(0x1_0000, 256, &cfg).unwrap();
        let mut ptr = start.raw();
        for i in 0..64 {
            // Dereference while in bounds.
            assert!(ec.check_access(ptr).is_ok(), "iteration {i}");
            let (next, _) = ocu.check_marked(ptr, ptr + 4);
            ptr = next;
        }
        // ptr now points one past the end; the increment poisoned it …
        assert_eq!(DevicePtr::from_raw(ptr).extent(), 0);
        // … but the loop exits without dereferencing, so no fault fires.
        // (Only an explicit access would fault:)
        assert!(ec.check_access(ptr).is_err());
    }
}
