//! # lmi-core — the Let-Me-In memory-safety mechanism
//!
//! This crate implements the primary contribution of *Let-Me-In: (Still)
//! Employing In-pointer Bounds Metadata for Fine-grained GPU Memory Safety*
//! (HPCA 2025):
//!
//! * [`ptr`] — the 64-bit pointer format of paper Fig. 6: a 5-bit **extent**
//!   field in the most significant bits encodes the power-of-two buffer size
//!   (256 B … 256 GiB), the remaining bits split into *unmodifiable* (UM) and
//!   *modifiable* (M) address bits;
//! * [`ocu`] — the **Overflow Checking Unit** attached to every integer ALU
//!   (paper §VII): on a hint-marked pointer operation it masks the
//!   XOR-difference between the incoming pointer and the ALU result and
//!   poisons the pointer (clears its extent) if any bit above the buffer's
//!   alignment boundary changed;
//! * [`ec`] — the **Extent Checker** in the load/store unit: faults any
//!   dereference whose extent is zero, implementing *delayed termination*
//!   (paper §XII-A) so that transiently out-of-bounds pointers that are never
//!   dereferenced cause no false positive;
//! * [`temporal`] — extent nullification on `free`/scope exit (paper §VIII);
//! * [`liveness`] — the §XII-C extension: UM-bit-keyed pointer liveness
//!   tracking with optional page-invalidation for large buffers, which closes
//!   the copied-pointer use-after-free hole;
//! * [`hw`] — a structural gate-level model of the OCU used to reproduce the
//!   paper's hardware cost results (Table VI, §XI-C: ≈153 gate equivalents
//!   per thread, 0.63 ns critical path, three-cycle pipelined latency).
//!
//! ## Quick tour
//!
//! ```
//! use lmi_core::{PtrConfig, DevicePtr, Ocu, ExtentChecker};
//!
//! let cfg = PtrConfig::default();
//! // cudaMalloc(1000) rounds to 1024 B and embeds extent 3 in the pointer.
//! let p = DevicePtr::encode(0x1234_5400, 1000, &cfg)?;
//! assert_eq!(p.size(&cfg), Some(1024));
//!
//! // In-bounds pointer arithmetic passes the OCU …
//! let ocu = Ocu::new(cfg);
//! let (_q, outcome) = ocu.check_marked(p.raw(), p.raw() + 1016);
//! assert!(outcome.passed());
//!
//! // … an out-of-bounds update poisons the pointer, and the EC faults the
//! // dereference (not the arithmetic — delayed termination).
//! let (bad, outcome) = ocu.check_marked(p.raw(), p.raw() + 1024);
//! assert!(!outcome.passed());
//! let ec = ExtentChecker::new(cfg);
//! assert!(ec.check_access(bad).is_err());
//! # Ok::<(), lmi_core::PtrError>(())
//! ```

pub mod ec;
pub mod error;
pub mod hw;
pub mod lifecycle;
pub mod liveness;
pub mod ocu;
pub mod ocu_pair;
pub mod ptr;
pub mod temporal;

pub use ec::ExtentChecker;
pub use error::{TemporalKind, Violation};
pub use lifecycle::{LifeCycle, TrackedPtr};
pub use liveness::LivenessTracker;
pub use ocu::{Ocu, OcuOutcome};
pub use ocu_pair::PairOcu;
pub use ptr::{DevicePtr, PtrConfig, PtrError};
pub use temporal::invalidate_extent;
