//! A small standard-cell library with FreePDK45-class area and delay figures.
//!
//! Area is measured in **gate equivalents** (GE, the area of one NAND2) and
//! delay in picoseconds at a typical fan-out. The figures are calibrated to
//! 45 nm-class cells so the derived OCU area and critical path land in the
//! regime the paper synthesized (FreePDK45, §XI-C).

/// Standard-cell kinds used by the OCU netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// 2-input NAND (the area unit: 1 GE).
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR (used in the zero-detect reduction tree).
    Nor3,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2:1 multiplexer.
    Mux2,
    /// Full adder (composite cell).
    FullAdder,
    /// D flip-flop (register slice bit).
    Dff,
}

/// Area/delay lookups for a [`CellKind`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CellLibrary;

impl CellLibrary {
    /// Area in gate equivalents.
    pub fn ge(self, kind: CellKind) -> f64 {
        match kind {
            CellKind::Inv => 0.75,
            CellKind::Nand2 => 1.0,
            CellKind::Nor2 => 1.0,
            CellKind::Nor3 => 1.5,
            CellKind::And2 => 1.25,
            CellKind::Or2 => 1.25,
            CellKind::Xor2 => 2.0,
            CellKind::Mux2 => 2.25,
            CellKind::FullAdder => 8.25,
            CellKind::Dff => 4.5,
        }
    }

    /// Propagation delay in picoseconds at typical load (45 nm class).
    pub fn delay_ps(self, kind: CellKind) -> f64 {
        match kind {
            CellKind::Inv => 28.0,
            CellKind::Nand2 => 48.0,
            CellKind::Nor2 => 52.0,
            CellKind::Nor3 => 60.0,
            CellKind::And2 => 66.0,
            CellKind::Or2 => 68.0,
            CellKind::Xor2 => 88.0,
            CellKind::Mux2 => 80.0,
            CellKind::FullAdder => 150.0,
            CellKind::Dff => 95.0, // clk→Q plus setup budget
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nand2_is_the_area_unit() {
        assert_eq!(CellLibrary.ge(CellKind::Nand2), 1.0);
    }

    #[test]
    fn composite_cells_cost_more_than_simple_gates() {
        let lib = CellLibrary;
        assert!(lib.ge(CellKind::FullAdder) > lib.ge(CellKind::Xor2));
        assert!(lib.ge(CellKind::Mux2) > lib.ge(CellKind::Nand2));
        assert!(lib.delay_ps(CellKind::Xor2) > lib.delay_ps(CellKind::Nand2));
    }
}
