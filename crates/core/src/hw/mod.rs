//! Gate-level hardware cost model of the OCU (paper Table VI and §XI-C).
//!
//! The paper synthesizes the OCU with Cadence tools on the FreePDK45 library
//! and reports ≈153 gate equivalents per thread, no SRAM, a 0.63 ns critical
//! path (fmax 1.587 GHz) and two added register slices (three-cycle latency)
//! to close timing at 3 GHz-class GPU clocks. Without proprietary EDA we
//! reproduce those numbers *structurally*: [`netlist`] builds the OCU from a
//! standard-cell library ([`cells`]) with FreePDK45-class area and delay
//! figures, and derives area, critical path, fmax and pipeline depth from
//! the structure. [`compare`] holds the published comparison rows of
//! Table VI.

pub mod cells;
pub mod compare;
pub mod netlist;
pub mod verilog;

pub use cells::{CellKind, CellLibrary};
pub use compare::{comparison_rows, HwCostRow, MechanismGranularity};
pub use netlist::{DatapathWidth, OcuNetlist, Stage};
pub use verilog::emit_verilog;
