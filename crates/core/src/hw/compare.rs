//! Hardware-overhead comparison data (paper Table VI).
//!
//! The rows for No-Fat, C3, IMT and GPUShield reproduce the figures the
//! paper compiled from those papers' descriptions; the LMI row is computed
//! live from the [`super::netlist`] model.

use super::netlist::{DatapathWidth, OcuNetlist};

/// Hardware granularity at which the additional logic is replicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechanismGranularity {
    /// Per CPU/GPU core.
    PerCore,
    /// Per streaming multiprocessor.
    PerSm,
    /// Per warp.
    PerWarp,
    /// Per thread (lane).
    PerThread,
}

impl MechanismGranularity {
    /// Table VI's suffix notation (`/C`, `/SM`, `/W`, `/T`).
    pub fn suffix(self) -> &'static str {
        match self {
            MechanismGranularity::PerCore => "/C",
            MechanismGranularity::PerSm => "/SM",
            MechanismGranularity::PerWarp => "/W",
            MechanismGranularity::PerThread => "/T",
        }
    }
}

/// One row of Table VI.
#[derive(Debug, Clone)]
pub struct HwCostRow {
    /// Mechanism name.
    pub name: &'static str,
    /// Description of the additional logic.
    pub logic: &'static str,
    /// Gate-equivalent count.
    pub gates_ge: f64,
    /// Replication granularity of the gate count.
    pub granularity: MechanismGranularity,
    /// Dedicated SRAM bytes (at the same granularity).
    pub sram_bytes: u32,
    /// System IPs whose verification the mechanism perturbs.
    pub to_be_verified: &'static str,
}

/// All Table VI rows; the LMI entry is computed from the netlist model.
pub fn comparison_rows() -> Vec<HwCostRow> {
    let lmi = OcuNetlist::new(DatapathWidth::W32);
    vec![
        HwCostRow {
            name: "No-Fat",
            logic: "Bounds checking, base computing",
            gates_ge: 59_476.0,
            granularity: MechanismGranularity::PerCore,
            sram_bytes: 1024,
            to_be_verified: "LSU, NoC, cache",
        },
        HwCostRow {
            name: "C3",
            logic: "Keystream generator",
            gates_ge: 27_280.0,
            granularity: MechanismGranularity::PerCore,
            sram_bytes: 0,
            to_be_verified: "LSU, NoC, cache",
        },
        HwCostRow {
            name: "IMT",
            logic: "Tag logic in ECC",
            gates_ge: 900.0,
            granularity: MechanismGranularity::PerSm,
            sram_bytes: 0,
            to_be_verified: "Memctrl, ECC, cache",
        },
        HwCostRow {
            name: "GPUShield",
            logic: "2-Level cache, comparator",
            gates_ge: 1000.0,
            granularity: MechanismGranularity::PerWarp,
            sram_bytes: 910,
            to_be_verified: "LSU, NoC, cache",
        },
        HwCostRow {
            name: "LMI",
            logic: "4x gate, subtract, shift, comparator",
            gates_ge: lmi.area_ge(),
            granularity: MechanismGranularity::PerThread,
            sram_bytes: 0,
            to_be_verified: "ALU (INT only), LSU",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lmi_is_the_smallest_and_needs_no_sram() {
        let rows = comparison_rows();
        let lmi = rows.iter().find(|r| r.name == "LMI").unwrap();
        assert_eq!(lmi.sram_bytes, 0);
        assert_eq!(lmi.granularity, MechanismGranularity::PerThread);
        for row in &rows {
            if row.name != "LMI" {
                assert!(
                    lmi.gates_ge < row.gates_ge,
                    "LMI ({:.0} GE) should undercut {} ({:.0} GE)",
                    lmi.gates_ge,
                    row.name,
                    row.gates_ge
                );
            }
        }
    }

    #[test]
    fn verification_scope_is_confined_to_alu_and_lsu() {
        let rows = comparison_rows();
        let lmi = rows.iter().find(|r| r.name == "LMI").unwrap();
        assert!(!lmi.to_be_verified.contains("NoC"));
        assert!(!lmi.to_be_verified.contains("cache"));
    }

    #[test]
    fn granularity_suffixes() {
        assert_eq!(MechanismGranularity::PerCore.suffix(), "/C");
        assert_eq!(MechanismGranularity::PerThread.suffix(), "/T");
    }
}
