//! Structural netlist of the OCU and derived area/timing figures.
//!
//! The datapath follows paper §VII: operand selection, a mask generator
//! driven by the extent bits ("subtract, shift"), an XOR difference stage, a
//! mask-AND stage, and a zero comparator, plus the extent-clear gates.
//!
//! Two datapath widths are modeled:
//!
//! * [`DatapathWidth::W32`] — the lean per-thread unit the paper reports in
//!   Table VI (≈153 GE/thread): it monitors the *high* 32-bit register of
//!   the pointer pair, where the extent and all UM bits of buffers up to the
//!   device limit live; the thermometer mask only needs to cover address
//!   bits 32–37 (buffers larger than 4 GiB).
//! * [`DatapathWidth::W64`] — a monolithic 64-bit checker matching this
//!   reproduction's single-instruction 64-bit pointer ALU model, used for
//!   the ablation study.

use super::cells::{CellKind, CellLibrary};

/// Datapath width of the OCU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatapathWidth {
    /// 32-bit (high-register) checker — the paper's Table VI configuration.
    W32,
    /// Full 64-bit checker.
    W64,
}

impl DatapathWidth {
    /// Width in bits.
    pub fn bits(self) -> usize {
        match self {
            DatapathWidth::W32 => 32,
            DatapathWidth::W64 => 64,
        }
    }
}

/// One pipeline-stage-free logic stage of the netlist.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage name (for reports).
    pub name: &'static str,
    /// Cells instantiated: `(kind, count)`.
    pub cells: Vec<(CellKind, usize)>,
    /// The longest gate chain through the stage.
    pub path: Vec<CellKind>,
}

impl Stage {
    /// Total stage area in gate equivalents.
    pub fn ge(&self, lib: CellLibrary) -> f64 {
        self.cells.iter().map(|&(k, n)| lib.ge(k) * n as f64).sum()
    }

    /// Stage propagation delay in picoseconds.
    pub fn delay_ps(&self, lib: CellLibrary) -> f64 {
        self.path.iter().map(|&k| lib.delay_ps(k)).sum()
    }
}

/// The OCU netlist: stages, area and timing queries.
#[derive(Debug, Clone)]
pub struct OcuNetlist {
    width: DatapathWidth,
    lib: CellLibrary,
    stages: Vec<Stage>,
}

fn reduction_tree(inputs: usize) -> (usize, usize) {
    // 3-input reduction gates: returns (gate count, depth).
    let mut remaining = inputs;
    let mut gates = 0;
    let mut depth = 0;
    while remaining > 1 {
        let level = remaining.div_ceil(3);
        gates += level;
        remaining = level;
        depth += 1;
    }
    (gates, depth)
}

impl OcuNetlist {
    /// Builds the netlist for the given datapath width.
    pub fn new(width: DatapathWidth) -> OcuNetlist {
        let bits = width.bits();
        // Address bits whose mask membership depends on the extent value:
        // the thermometer decoder spans min-align (bit 8) … max buffer
        // (bit 37). The 32-bit unit only sees bits 32+ of the address.
        let thermometer_bits = match width {
            DatapathWidth::W32 => 6,  // address bits 32–37
            DatapathWidth::W64 => 30, // address bits 8–37
        };
        let (tree_gates, tree_depth) = reduction_tree(bits);

        let stages = vec![
            Stage {
                name: "mask generator (subtract + shift)",
                cells: vec![
                    (CellKind::Xor2, 5), // 5-bit extent subtractor sum
                    (CellKind::And2, 4), // carry chain (carry-select trimmed)
                    (CellKind::Nor2, thermometer_bits),
                ],
                path: vec![
                    CellKind::Xor2,
                    CellKind::And2,
                    CellKind::And2,
                    CellKind::And2,
                    CellKind::Nor2,
                ],
            },
            Stage {
                name: "xor difference",
                cells: vec![(CellKind::Xor2, bits)],
                path: vec![CellKind::Xor2],
            },
            Stage {
                name: "mask and",
                cells: vec![(CellKind::And2, bits)],
                path: vec![CellKind::And2],
            },
            Stage {
                name: "zero comparator",
                cells: vec![(CellKind::Nor3, tree_gates)],
                path: vec![CellKind::Nor3; tree_depth],
            },
            Stage {
                name: "extent clear",
                cells: vec![(CellKind::And2, 5)],
                // Off the fault-detect critical path: the clear gates sit on
                // the writeback mux of the following pipeline stage.
                path: vec![],
            },
        ];
        OcuNetlist { width, lib: CellLibrary, stages }
    }

    /// The configured datapath width.
    pub fn width(&self) -> DatapathWidth {
        self.width
    }

    /// The netlist stages.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Total combinational area per thread, in gate equivalents
    /// (Table VI: ≈153 GE/T for the 32-bit unit).
    pub fn area_ge(&self) -> f64 {
        self.stages.iter().map(|s| s.ge(self.lib)).sum()
    }

    /// Critical path in picoseconds: the mask generator and the XOR stage
    /// evaluate in parallel (both start when operands arrive); the AND stage
    /// and the zero comparator follow serially (§XI-C: 0.63 ns).
    pub fn critical_path_ps(&self) -> f64 {
        let by_name = |name: &str| {
            self.stages
                .iter()
                .find(|s| s.name.starts_with(name))
                .map(|s| s.delay_ps(self.lib))
                .unwrap_or(0.0)
        };
        let front = by_name("mask generator").max(by_name("xor difference"));
        front + by_name("mask and") + by_name("zero comparator")
    }

    /// Maximum standalone operating frequency in GHz (paper: 1.587 GHz).
    pub fn fmax_ghz(&self) -> f64 {
        1000.0 / self.critical_path_ps()
    }

    /// Number of register slices needed to run at `clock_ghz`
    /// (paper §XI-C: two slices at 3 GHz-class clocks).
    pub fn register_slices(&self, clock_ghz: f64) -> u32 {
        let cycles = (self.critical_path_ps() * clock_ghz / 1000.0).ceil() as u32;
        cycles.max(1)
    }

    /// Total check latency in cycles at `clock_ghz`: the pipelined depth
    /// plus the writeback cycle (paper: three-cycle delay at 3 GHz).
    pub fn latency_cycles(&self, clock_ghz: f64) -> u32 {
        self.register_slices(clock_ghz) + 1
    }

    /// Area of the pipeline registers added by slicing (not counted in the
    /// per-thread combinational GE figure, which matches the paper's
    /// unpipelined synthesis).
    pub fn slice_area_ge(&self, clock_ghz: f64) -> f64 {
        let slices = self.register_slices(clock_ghz).saturating_sub(1);
        // Each slice registers the masked-difference vector plus the extent.
        let bits_per_slice = self.width.bits() + 5;
        slices as f64 * bits_per_slice as f64 * self.lib.ge(CellKind::Dff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w32_area_matches_table6_within_tolerance() {
        let n = OcuNetlist::new(DatapathWidth::W32);
        let ge = n.area_ge();
        assert!((140.0..=165.0).contains(&ge), "expected ≈153 GE per thread, got {ge:.1}");
    }

    #[test]
    fn w64_is_roughly_twice_the_area() {
        let w32 = OcuNetlist::new(DatapathWidth::W32).area_ge();
        let w64 = OcuNetlist::new(DatapathWidth::W64).area_ge();
        assert!(w64 > 1.6 * w32 && w64 < 2.6 * w32, "w32={w32:.1} w64={w64:.1}");
    }

    #[test]
    fn critical_path_matches_sec11c_within_tolerance() {
        let n = OcuNetlist::new(DatapathWidth::W32);
        let ps = n.critical_path_ps();
        assert!((560.0..=700.0).contains(&ps), "expected ≈630 ps critical path, got {ps:.0}");
        let fmax = n.fmax_ghz();
        assert!((1.4..=1.8).contains(&fmax), "expected ≈1.587 GHz, got {fmax:.3}");
    }

    #[test]
    fn three_cycle_latency_at_3ghz() {
        let n = OcuNetlist::new(DatapathWidth::W32);
        assert_eq!(n.register_slices(3.0), 2, "two register slices");
        assert_eq!(n.latency_cycles(3.0), 3, "three-cycle delay");
    }

    #[test]
    fn slower_clocks_need_no_slicing() {
        let n = OcuNetlist::new(DatapathWidth::W32);
        assert_eq!(n.register_slices(1.0), 1);
        assert_eq!(n.latency_cycles(1.0), 2);
        assert_eq!(n.slice_area_ge(1.0), 0.0);
    }

    #[test]
    fn reduction_tree_shapes() {
        assert_eq!(reduction_tree(32), (11 + 4 + 2 + 1, 4));
        assert_eq!(reduction_tree(64), (22 + 8 + 3 + 1, 4));
        assert_eq!(reduction_tree(1), (0, 0));
    }

    #[test]
    fn no_sram_in_the_netlist() {
        // Table VI: LMI needs zero SRAM — the netlist is pure combinational
        // logic plus optional pipeline flops.
        let n = OcuNetlist::new(DatapathWidth::W32);
        for stage in n.stages() {
            for (kind, _) in &stage.cells {
                assert_ne!(*kind, CellKind::Dff, "{}", stage.name);
            }
        }
    }
}
