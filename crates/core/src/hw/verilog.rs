//! Structural Verilog emission for the OCU netlist.
//!
//! Emits a synthesizable-style RTL module equivalent to the gate-level
//! model in [`super::netlist`] — the artifact a hardware team would hand to
//! the synthesis flow the paper used (Cadence + FreePDK45). The module is
//! also a precise, reviewable statement of the checking logic: mask
//! generation from the extent, XOR difference, masked compare, and the
//! extent-clear writeback of delayed termination.

use super::netlist::OcuNetlist;

/// Renders the OCU as a structural Verilog module.
pub fn emit_verilog(netlist: &OcuNetlist) -> String {
    let w = netlist.width().bits();
    let hi = w - 1;
    let min_align_log2 = 8; // K = 256, matching PtrConfig::default()
    let mut v = String::new();
    v.push_str(&format!(
        "// Overflow Checking Unit — {w}-bit datapath\n\
         // Auto-generated from lmi_core::hw::OcuNetlist ({:.1} GE, {:.0} ps critical path).\n\
         //\n\
         // in_ptr : the S-bit-selected input operand (the incoming pointer)\n\
         // result : the raw integer-ALU output\n\
         // active : the instruction's A hint bit\n\
         // wb     : the value written back (extent cleared on a violation)\n\
         // poison : asserted when the pointer update escaped its 2^n region\n\
         module lmi_ocu_w{w} (\n\
         \x20 input  wire [{hi}:0] in_ptr,\n\
         \x20 input  wire [{hi}:0] result,\n\
         \x20 input  wire        active,\n\
         \x20 output wire [{hi}:0] wb,\n\
         \x20 output wire        poison\n\
         );\n\n",
        netlist.area_ge(),
        netlist.critical_path_ps(),
    ));

    // Extent extraction (lives in the top 5 bits of the high word).
    let extent_lo = if w == 64 { 59 } else { 27 };
    v.push_str(&format!(
        "  // Extent field and validity (extent 0 propagates unchecked).\n\
         \x20 wire [4:0] extent = in_ptr[{}:{}];\n\
         \x20 wire       valid  = |extent;\n\n",
        extent_lo + 4,
        extent_lo
    ));

    // Mask generator: thermometer of n = extent - 1 + log2(K) over the
    // datapath's address bits.
    v.push_str(&format!(
        "  // Mask generator (\"subtract, shift\"): bit i is modifiable when\n\
         \x20 // i < extent - 1 + {min_align_log2}.\n\
         \x20 wire [5:0] n = {{1'b0, extent}} + 6'd{} ;\n\
         \x20 wire [{hi}:0] modifiable;\n",
        min_align_log2 - 1
    ));
    let bit_base = if w == 64 { 0 } else { 32 };
    for i in 0..w {
        v.push_str(&format!("  assign modifiable[{i}] = (6'd{} < n);\n", i + bit_base));
    }

    v.push_str(&format!(
        "\n  // XOR difference and masked compare.\n\
         \x20 wire [{hi}:0] changed  = in_ptr ^ result;\n\
         \x20 wire [{hi}:0] escaped  = changed & ~modifiable;\n\
         \x20 wire          overflow = |escaped;\n\n\
         \x20 assign poison = active & valid & overflow;\n\n"
    ));

    // Writeback with extent clear (delayed termination: no fault here).
    if w == 64 {
        v.push_str(
            "  // Delayed termination: clear the extent, let the EC fault the use.\n\
             \x20 assign wb = poison ? {5'b0, result[58:0]} : result;\n",
        );
    } else {
        v.push_str(
            "  // Delayed termination: clear the extent, let the EC fault the use.\n\
             \x20 assign wb = poison ? {5'b0, result[26:0]} : result;\n",
        );
    }
    v.push_str("\nendmodule\n");
    v
}

#[cfg(test)]
mod tests {
    use super::super::netlist::DatapathWidth;
    use super::*;

    #[test]
    fn emits_well_formed_modules_for_both_widths() {
        for width in [DatapathWidth::W32, DatapathWidth::W64] {
            let n = OcuNetlist::new(width);
            let v = emit_verilog(&n);
            assert!(v.contains(&format!("module lmi_ocu_w{}", width.bits())));
            assert!(v.contains("endmodule"));
            assert!(v.contains("assign poison"));
            // One mask bit assignment per datapath bit.
            let mask_bits = v.matches("assign modifiable[").count();
            assert_eq!(mask_bits, width.bits());
        }
    }

    #[test]
    fn w32_extent_sits_at_bit_27() {
        let v = emit_verilog(&OcuNetlist::new(DatapathWidth::W32));
        assert!(v.contains("in_ptr[31:27]"), "extent field of the high register");
    }

    #[test]
    fn w64_extent_sits_at_bit_59() {
        let v = emit_verilog(&OcuNetlist::new(DatapathWidth::W64));
        assert!(v.contains("in_ptr[63:59]"));
    }
}
