//! Memory-safety violation vocabulary shared across the workspace.

use std::fmt;

/// Kinds of temporal memory-safety violations (paper §IX-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemporalKind {
    /// Dereference of a pointer whose buffer was freed.
    UseAfterFree,
    /// Dereference of a stack pointer after the frame went out of scope.
    UseAfterScope,
    /// `free` of a pointer that does not point at a live allocation base.
    InvalidFree,
    /// Second `free` of the same allocation.
    DoubleFree,
}

impl fmt::Display for TemporalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TemporalKind::UseAfterFree => "use-after-free",
            TemporalKind::UseAfterScope => "use-after-scope",
            TemporalKind::InvalidFree => "invalid free",
            TemporalKind::DoubleFree => "double free",
        };
        f.write_str(s)
    }
}

/// A detected memory-safety violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Violation {
    /// Spatial violation: an access (or poisoned pointer dereference)
    /// outside the bounds of its buffer.
    Spatial {
        /// The faulting virtual address (extent bits stripped), if known.
        addr: u64,
    },
    /// Temporal violation.
    Temporal(TemporalKind),
    /// Dereference of a pointer whose extent is zero and whose provenance
    /// is unknown (never initialized from an allocation).
    InvalidPointer {
        /// The faulting raw pointer value.
        raw: u64,
    },
}

impl Violation {
    /// Returns `true` for spatial violations.
    pub fn is_spatial(self) -> bool {
        matches!(self, Violation::Spatial { .. })
    }

    /// Returns `true` for temporal violations.
    pub fn is_temporal(self) -> bool {
        matches!(self, Violation::Temporal(_))
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Spatial { addr } => write!(f, "spatial violation at {addr:#x}"),
            Violation::Temporal(kind) => write!(f, "temporal violation: {kind}"),
            Violation::InvalidPointer { raw } => {
                write!(f, "dereference of invalid pointer {raw:#x}")
            }
        }
    }
}

impl std::error::Error for Violation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(Violation::Spatial { addr: 0 }.is_spatial());
        assert!(!Violation::Spatial { addr: 0 }.is_temporal());
        assert!(Violation::Temporal(TemporalKind::UseAfterFree).is_temporal());
        assert!(!Violation::InvalidPointer { raw: 1 }.is_spatial());
    }

    #[test]
    fn display_is_informative() {
        let v = Violation::Temporal(TemporalKind::DoubleFree);
        assert_eq!(v.to_string(), "temporal violation: double free");
        assert!(Violation::Spatial { addr: 0x1234 }.to_string().contains("0x1234"));
    }
}
