//! Temporal memory safety by extent nullification (paper §VIII).
//!
//! LMI enforces temporal safety by invalidating pointers when their buffers
//! die: the compiler pass inserts an extent-clearing instruction immediately
//! after every `free()` call and just before every return that ends a stack
//! frame holding buffers. The EC then faults any later dereference.
//!
//! The mechanism covers the pointer **passed to `free`** (and everything
//! later derived *from* it), but not copies made *before* the free — paper
//! Fig. 11's pointer `C`. The [`crate::liveness`] module implements the
//! §XII-C extension that closes this hole.

use crate::ptr::DevicePtr;

/// Clears the extent field of a raw pointer value — the operation the LMI
/// compiler pass emits after `free()` and before scope exit.
///
/// ```
/// use lmi_core::{invalidate_extent, DevicePtr, PtrConfig};
/// let cfg = PtrConfig::default();
/// let p = DevicePtr::encode(0x4000, 256, &cfg)?;
/// let dead = invalidate_extent(p.raw());
/// assert_eq!(DevicePtr::from_raw(dead).extent(), 0);
/// assert_eq!(DevicePtr::from_raw(dead).addr(), 0x4000);
/// # Ok::<(), lmi_core::PtrError>(())
/// ```
pub fn invalidate_extent(raw: u64) -> u64 {
    DevicePtr::from_raw(raw).invalidated().raw()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ec::ExtentChecker;
    use crate::ocu::Ocu;
    use crate::ptr::PtrConfig;

    /// Re-enacts paper Fig. 11 line by line.
    #[test]
    fn fig11_temporal_safety_semantics() {
        let cfg = PtrConfig::default();
        let ocu = Ocu::new(cfg);
        let ec = ExtentChecker::new(cfg);

        // int* A = malloc(sizeof(int) * 4);
        let a = DevicePtr::encode(0x9000, 16, &cfg).unwrap().raw();

        // B = A[0];  -- safe: A has a valid extent.
        assert!(ec.check_access(a).is_ok());

        // C = A + 1;  -- a copy derived before the free.
        let (c, outcome) = ocu.check_marked(a, a + 4);
        assert!(outcome.passed());

        // free(A);  -- the compiler nullifies A's extent.
        let a = invalidate_extent(a);

        // D = A[0];  -- error: A is invalid.
        assert!(ec.check_access(a).is_err());

        // E = A + 1;  -- arithmetic propagates the invalid extent …
        let (e, _) = ocu.check_marked(a, a + 4);
        // F = E[0];  -- … so the derived pointer faults too.
        assert!(ec.check_access(e).is_err());

        // G = C[0];  -- no error but UNSAFE: C was copied before the free
        // and is not invalidated (the documented limitation).
        assert!(ec.check_access(c).is_ok());
    }

    #[test]
    fn double_invalidate_is_idempotent() {
        let cfg = PtrConfig::default();
        let p = DevicePtr::encode(0x9000, 256, &cfg).unwrap().raw();
        let once = invalidate_extent(p);
        assert_eq!(invalidate_extent(once), once);
    }
}
