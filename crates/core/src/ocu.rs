//! The Overflow Checking Unit (paper §VII).
//!
//! The OCU sits next to each integer ALU. When the decoder hands it an
//! instruction whose **A** hint bit is set, it:
//!
//! 1. selects the input operand named by the **S** bit (the incoming
//!    pointer) — the MUX stage;
//! 2. derives an address mask from the pointer's extent bits — the mask
//!    generator (accounting for the minimum allocation size, default 256 B);
//! 3. XORs the selected input with the ALU output to find the changed bits;
//! 4. ANDs the difference with the complement of the mask; a non-zero result
//!    means some bit *above* the buffer's alignment boundary changed — an
//!    out-of-bounds pointer update;
//! 5. on a violation, **clears the extent bits** of the result instead of
//!    faulting (delayed termination, §XII-A); the EC in the LSU faults the
//!    pointer if it is ever dereferenced.

use crate::ptr::{DevicePtr, PoisonKind, PtrConfig, EXTENT_SHIFT};

/// Result of an OCU check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OcuOutcome {
    /// The instruction was not marked for checking (A bit clear).
    NotChecked,
    /// The pointer update stayed within its 2ⁿ region.
    Pass,
    /// The incoming pointer was already invalid (extent 0 or a debug code);
    /// the invalid extent propagates to the result unchanged.
    PropagateInvalid,
    /// The update escaped the region; the result's extent was cleared (or
    /// stamped with a debug code).
    Poisoned,
}

impl OcuOutcome {
    /// Returns `true` if the check did not poison the pointer.
    pub fn passed(self) -> bool {
        !matches!(self, OcuOutcome::Poisoned)
    }

    /// Stable snake_case label, used by telemetry and forensics reports.
    pub fn label(self) -> &'static str {
        match self {
            OcuOutcome::NotChecked => "not_checked",
            OcuOutcome::Pass => "pass",
            OcuOutcome::PropagateInvalid => "propagate_invalid",
            OcuOutcome::Poisoned => "poisoned",
        }
    }
}

/// The hardware OCU model.
///
/// One logical instance exists per integer-ALU lane; the model is stateless
/// (the paper's queue that aligns inputs with pipelined outputs is a timing
/// artifact handled by the simulator's latency accounting).
#[derive(Debug, Clone, Copy)]
pub struct Ocu {
    cfg: PtrConfig,
    /// Extra result-latency cycles introduced by the two register slices
    /// needed to close timing at > 3 GHz (paper §XI-C: three-cycle delay).
    pub delay_cycles: u32,
}

impl Ocu {
    /// An OCU with the paper's default three-cycle pipelined latency.
    pub fn new(cfg: PtrConfig) -> Ocu {
        Ocu { cfg, delay_cycles: 3 }
    }

    /// An OCU with custom latency (for ablation studies).
    pub fn with_delay(cfg: PtrConfig, delay_cycles: u32) -> Ocu {
        Ocu { cfg, delay_cycles }
    }

    /// The pointer-format configuration the OCU masks against.
    pub fn config(&self) -> &PtrConfig {
        &self.cfg
    }

    /// Checks a hint-marked pointer operation: `input` is the register value
    /// selected by the S bit, `result` the raw ALU output. Returns the
    /// (possibly poisoned) value to write back and the check outcome.
    pub fn check_marked(&self, input: u64, result: u64) -> (u64, OcuOutcome) {
        let in_ptr = DevicePtr::from_raw(input);
        let extent = in_ptr.extent();
        if !self.cfg.extent_is_size(extent) {
            // Invalid or debug-coded pointer: arithmetic keeps it invalid;
            // the EC reports it at dereference time.
            return (result, OcuOutcome::PropagateInvalid);
        }
        // Mask generator: modifiable bits are the low `extent + log2 K - 1`
        // bits (size = 2^(E - 1 + log2 K)).
        let size = self.cfg.size_for_extent(extent).expect("extent validated as size");
        let modifiable = size - 1;
        // XOR stage + AND stage: any changed bit above the modifiable region
        // (including the extent field itself) is a violation.
        let changed = input ^ result;
        if changed & !modifiable == 0 {
            (result, OcuOutcome::Pass)
        } else {
            let poisoned =
                DevicePtr::from_raw(result).poisoned(PoisonKind::SpatialViolation, &self.cfg).raw();
            (poisoned, OcuOutcome::Poisoned)
        }
    }

    /// Convenience wrapper applying the A hint: unmarked instructions pass
    /// through untouched.
    pub fn check(&self, marked: bool, input: u64, result: u64) -> (u64, OcuOutcome) {
        if marked {
            self.check_marked(input, result)
        } else {
            (result, OcuOutcome::NotChecked)
        }
    }
}

/// Reference (non-hardware) bounds judgment used by tests to cross-validate
/// the OCU: is `result` still inside the 2ⁿ region of `input`?
pub fn reference_in_region(input: u64, result: u64, cfg: &PtrConfig) -> bool {
    let p = DevicePtr::from_raw(input);
    match p.base(cfg) {
        Some(base) => {
            let size = p.size(cfg).expect("valid pointer has size");
            let r = DevicePtr::from_raw(result);
            r.extent() == p.extent() && r.addr() >= base && r.addr() < base + size
        }
        None => false,
    }
}

/// Position of the extent field, re-exported for the hardware model.
pub const EXTENT_FIELD_SHIFT: u32 = EXTENT_SHIFT;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptr::PtrConfig;

    fn ptr(addr: u64, size: u64, cfg: &PtrConfig) -> u64 {
        DevicePtr::encode(addr, size, cfg).unwrap().raw()
    }

    #[test]
    fn in_bounds_update_passes() {
        let cfg = PtrConfig::default();
        let ocu = Ocu::new(cfg);
        let p = ptr(0x1_0000, 1024, &cfg);
        for delta in [0u64, 1, 255, 1023] {
            let (out, outcome) = ocu.check_marked(p, p + delta);
            assert_eq!(outcome, OcuOutcome::Pass, "delta {delta}");
            assert_eq!(out, p + delta);
        }
    }

    #[test]
    fn escape_poisons_the_result() {
        let cfg = PtrConfig::default();
        let ocu = Ocu::new(cfg);
        let p = ptr(0x1_0000, 1024, &cfg);
        let (out, outcome) = ocu.check_marked(p, p + 1024);
        assert_eq!(outcome, OcuOutcome::Poisoned);
        assert_eq!(DevicePtr::from_raw(out).extent(), 0, "extent cleared");
        assert_eq!(DevicePtr::from_raw(out).addr(), 0x1_0000 + 1024, "address preserved");
    }

    #[test]
    fn paper_example_0x12345700_is_caught() {
        // §IV-A2: updating 0x12345678 (256 B buffer) to 0x12345700 makes the
        // recovered base wrong — the OCU must flag it.
        let cfg = PtrConfig::default();
        let ocu = Ocu::new(cfg);
        let p = ptr(0x1234_5600, 256, &cfg);
        let moved = p + 0x78;
        let (_, outcome) = ocu.check_marked(p, moved);
        assert_eq!(outcome, OcuOutcome::Pass);
        let (out, outcome) = ocu.check_marked(moved, moved + 0x88); // -> ...5700
        assert_eq!(outcome, OcuOutcome::Poisoned);
        assert!(!DevicePtr::from_raw(out).is_valid(&cfg));
    }

    #[test]
    fn negative_escape_is_caught() {
        let cfg = PtrConfig::default();
        let ocu = Ocu::new(cfg);
        let p = ptr(0x1_0000, 512, &cfg);
        let below = p.wrapping_sub(1);
        let (_, outcome) = ocu.check_marked(p, below);
        assert_eq!(outcome, OcuOutcome::Poisoned);
    }

    #[test]
    fn tampering_with_extent_is_caught() {
        let cfg = PtrConfig::default();
        let ocu = Ocu::new(cfg);
        let p = ptr(0x1_0000, 512, &cfg);
        // An attacker tries to enlarge the buffer by bumping the extent.
        let forged = p + (1u64 << EXTENT_FIELD_SHIFT);
        let (_, outcome) = ocu.check_marked(p, forged);
        assert_eq!(outcome, OcuOutcome::Poisoned);
    }

    #[test]
    fn invalid_input_propagates_without_new_poison() {
        let cfg = PtrConfig::default();
        let ocu = Ocu::new(cfg);
        let dead = DevicePtr::encode(0x1_0000, 512, &cfg).unwrap().invalidated();
        let (out, outcome) = ocu.check_marked(dead.raw(), dead.raw() + 4);
        assert_eq!(outcome, OcuOutcome::PropagateInvalid);
        assert_eq!(DevicePtr::from_raw(out).extent(), 0);
    }

    #[test]
    fn unmarked_instructions_bypass_the_ocu() {
        let cfg = PtrConfig::default();
        let ocu = Ocu::new(cfg);
        let p = ptr(0x1_0000, 256, &cfg);
        let (out, outcome) = ocu.check(false, p, p + 4096);
        assert_eq!(outcome, OcuOutcome::NotChecked);
        assert_eq!(out, p + 4096);
    }

    #[test]
    fn poison_uses_debug_code_when_available() {
        let cfg = PtrConfig::with_device_limit_log2(34);
        let ocu = Ocu::new(cfg);
        let p = ptr(0x1_0000, 512, &cfg);
        let (out, outcome) = ocu.check_marked(p, p + 512);
        assert_eq!(outcome, OcuOutcome::Poisoned);
        assert_eq!(
            cfg.poison_kind(DevicePtr::from_raw(out).extent()),
            Some(PoisonKind::SpatialViolation)
        );
    }

    #[test]
    fn ocu_agrees_with_reference_judgment() {
        let cfg = PtrConfig::default();
        let ocu = Ocu::new(cfg);
        let p = ptr(0x40_0000, 4096, &cfg);
        for delta in (0..8192i64).step_by(64) {
            let result = (p as i64 + delta) as u64;
            let (_, outcome) = ocu.check_marked(p, result);
            assert_eq!(
                outcome.passed() && outcome != OcuOutcome::PropagateInvalid,
                reference_in_region(p, result, &cfg),
                "delta {delta}"
            );
        }
    }
}
