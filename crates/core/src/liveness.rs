//! Pointer liveness tracking — the §XII-C extension.
//!
//! LMI's base temporal mechanism misses use-after-free through pointer
//! *copies* (paper Fig. 11). The extension exploits a property of the
//! aligned pointer format: the **UM bits uniquely identify a live buffer**
//! (only one allocation can occupy a given 2ⁿ-aligned region at a time), so
//! a small membership table of live UM values suffices — no per-pointer
//! shadow tracking as in DangNull/CETS.
//!
//! Algorithm 1 additionally allows a *page-invalidation* optimization: large
//! buffers (`size > pageSize / 2`) are guaranteed by alignment to occupy
//! dedicated pages, so instead of a table entry the runtime can unmap the
//! pages on free, letting the MMU catch stale accesses. This bounds the
//! membership table size.

use std::collections::HashSet;

use crate::error::{TemporalKind, Violation};
use crate::ptr::{DevicePtr, PtrConfig};

/// Errors from the allocation hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookError {
    /// `free_hooked` was called on a pointer whose UM is not registered —
    /// an invalid or double free.
    NotLive(TemporalKind),
    /// The pointer carries no valid extent.
    InvalidExtent,
}

/// Membership-table-based liveness tracker (paper Algorithm 1).
#[derive(Debug, Clone)]
pub struct LivenessTracker {
    cfg: PtrConfig,
    /// Page size used by the page-invalidation optimization.
    page_size: u64,
    /// Whether `pageInvalidOpt` is enabled.
    page_invalid_opt: bool,
    /// Live UM values (keyed by `(extent, um)` — the UM value alone is only
    /// unique per size class).
    table: HashSet<(u8, u64)>,
    /// Pages unmapped by the page-invalidation path.
    invalidated_pages: HashSet<u64>,
    /// High-water mark of the membership table (for the ablation study).
    peak_entries: usize,
}

impl LivenessTracker {
    /// A tracker without the page-invalidation optimization: every
    /// allocation gets a membership-table entry.
    pub fn new(cfg: PtrConfig) -> LivenessTracker {
        LivenessTracker {
            cfg,
            page_size: 64 * 1024,
            page_invalid_opt: false,
            table: HashSet::new(),
            invalidated_pages: HashSet::new(),
            peak_entries: 0,
        }
    }

    /// A tracker with `pageInvalidOpt` enabled for the given page size
    /// (Algorithm 1 lines 5 and 11; the paper's example uses 64 KiB pages).
    pub fn with_page_invalidation(cfg: PtrConfig, page_size: u64) -> LivenessTracker {
        assert!(page_size.is_power_of_two(), "page size must be a power of two");
        LivenessTracker { page_size, page_invalid_opt: true, ..LivenessTracker::new(cfg) }
    }

    fn key(&self, ptr: DevicePtr) -> Option<(u8, u64)> {
        ptr.um_bits(&self.cfg).map(|um| (ptr.extent(), um))
    }

    /// `MALLOC_HOOKED` (Algorithm 1): registers a freshly allocated pointer.
    ///
    /// # Errors
    ///
    /// Returns [`HookError::InvalidExtent`] if the pointer has no extent.
    pub fn on_malloc(&mut self, ptr: DevicePtr) -> Result<(), HookError> {
        let key = self.key(ptr).ok_or(HookError::InvalidExtent)?;
        let size = ptr.size(&self.cfg).expect("keyed pointer has size");
        if !self.page_invalid_opt || size <= self.page_size / 2 {
            self.table.insert(key);
            self.peak_entries = self.peak_entries.max(self.table.len());
        } else {
            // Large buffers use dedicated pages; remap them on reuse.
            let pages: Vec<u64> = self.pages_of(ptr).collect();
            for page in pages {
                self.invalidated_pages.remove(&page);
            }
        }
        Ok(())
    }

    /// `FREE_HOOKED` (Algorithm 1): deregisters the buffer or invalidates
    /// its pages.
    ///
    /// # Errors
    ///
    /// * [`HookError::InvalidExtent`] for a pointer without extent;
    /// * [`HookError::NotLive`] for an invalid/double free.
    pub fn on_free(&mut self, ptr: DevicePtr) -> Result<(), HookError> {
        let key = self.key(ptr).ok_or(HookError::InvalidExtent)?;
        let size = ptr.size(&self.cfg).expect("keyed pointer has size");
        if !self.page_invalid_opt || size <= self.page_size / 2 {
            if self.table.remove(&key) {
                Ok(())
            } else {
                Err(HookError::NotLive(TemporalKind::DoubleFree))
            }
        } else {
            let pages: Vec<u64> = self.pages_of(ptr).collect();
            if pages.iter().all(|p| self.invalidated_pages.contains(p)) {
                return Err(HookError::NotLive(TemporalKind::DoubleFree));
            }
            self.invalidated_pages.extend(pages);
            Ok(())
        }
    }

    /// Checks a dereference: is the buffer identified by the pointer's UM
    /// bits still live? Catches copied-pointer UAF that the base mechanism
    /// misses.
    ///
    /// # Errors
    ///
    /// Returns [`Violation::Temporal`] for dead buffers and
    /// [`Violation::InvalidPointer`] for extent-less pointers.
    pub fn check_live(&self, ptr: DevicePtr) -> Result<(), Violation> {
        let key = match self.key(ptr) {
            Some(k) => k,
            None => return Err(Violation::InvalidPointer { raw: ptr.raw() }),
        };
        let size = ptr.size(&self.cfg).expect("keyed pointer has size");
        let live = if !self.page_invalid_opt || size <= self.page_size / 2 {
            self.table.contains(&key)
        } else {
            self.pages_of(ptr).all(|p| !self.invalidated_pages.contains(&p))
        };
        if live {
            Ok(())
        } else {
            Err(Violation::Temporal(TemporalKind::UseAfterFree))
        }
    }

    /// Current number of membership-table entries.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// High-water mark of the membership table.
    pub fn peak_table_len(&self) -> usize {
        self.peak_entries
    }

    /// Number of pages currently invalidated.
    pub fn invalidated_page_count(&self) -> usize {
        self.invalidated_pages.len()
    }

    fn pages_of(&self, ptr: DevicePtr) -> impl Iterator<Item = u64> + '_ {
        let base = ptr.base(&self.cfg).expect("valid pointer");
        let size = ptr.size(&self.cfg).expect("valid pointer").max(self.page_size);
        let page = self.page_size;
        (base / page..(base + size) / page).map(move |i| i * page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PtrConfig {
        PtrConfig::default()
    }

    fn mk(addr: u64, size: u64) -> DevicePtr {
        DevicePtr::encode(addr, size, &cfg()).unwrap()
    }

    #[test]
    fn copied_pointer_uaf_is_caught() {
        let mut t = LivenessTracker::new(cfg());
        let a = mk(0x1_0000, 1024);
        t.on_malloc(a).unwrap();
        let copy = a.wrapping_offset(4); // C = A + 1 from Fig. 11
        assert!(t.check_live(copy).is_ok());
        t.on_free(a).unwrap();
        // The base mechanism misses this; the tracker catches it.
        assert_eq!(t.check_live(copy), Err(Violation::Temporal(TemporalKind::UseAfterFree)));
    }

    #[test]
    fn double_free_is_reported() {
        let mut t = LivenessTracker::new(cfg());
        let a = mk(0x1_0000, 256);
        t.on_malloc(a).unwrap();
        t.on_free(a).unwrap();
        assert_eq!(t.on_free(a), Err(HookError::NotLive(TemporalKind::DoubleFree)));
    }

    #[test]
    fn realloc_of_same_region_revives_liveness() {
        let mut t = LivenessTracker::new(cfg());
        let a = mk(0x1_0000, 256);
        t.on_malloc(a).unwrap();
        t.on_free(a).unwrap();
        t.on_malloc(a).unwrap();
        assert!(t.check_live(a).is_ok());
    }

    #[test]
    fn same_um_different_size_class_are_distinct() {
        let mut t = LivenessTracker::new(cfg());
        // 0x1_0000 as a 256 B buffer and as a 512 B buffer share address
        // bits but have different extents — both can be tracked.
        let small = mk(0x1_0000, 256);
        let large = mk(0x1_0000, 512);
        t.on_malloc(small).unwrap();
        assert!(t.check_live(large).is_err(), "different size class is not live");
    }

    #[test]
    fn page_invalidation_skips_table_for_large_buffers() {
        let mut t = LivenessTracker::with_page_invalidation(cfg(), 64 * 1024);
        // 48 KiB rounds to 64 KiB — a full dedicated page (paper §XII-C).
        let big = mk(0x10_0000, 48 * 1024);
        t.on_malloc(big).unwrap();
        assert_eq!(t.table_len(), 0, "large buffer bypasses the table");
        assert!(t.check_live(big).is_ok());
        t.on_free(big).unwrap();
        assert!(t.invalidated_page_count() > 0);
        assert_eq!(
            t.check_live(big.wrapping_offset(128)),
            Err(Violation::Temporal(TemporalKind::UseAfterFree))
        );
        // Small buffers still use the table.
        let small = mk(0x1_0000, 256);
        t.on_malloc(small).unwrap();
        assert_eq!(t.table_len(), 1);
    }

    #[test]
    fn page_invalidation_remaps_on_reuse() {
        let mut t = LivenessTracker::with_page_invalidation(cfg(), 64 * 1024);
        let big = mk(0x10_0000, 64 * 1024);
        t.on_malloc(big).unwrap();
        t.on_free(big).unwrap();
        assert!(t.check_live(big).is_err());
        t.on_malloc(big).unwrap();
        assert!(t.check_live(big).is_ok(), "pages remapped on reuse");
    }

    #[test]
    fn peak_table_len_tracks_high_water_mark() {
        let mut t = LivenessTracker::new(cfg());
        let a = mk(0x1_0000, 256);
        let b = mk(0x2_0000, 256);
        t.on_malloc(a).unwrap();
        t.on_malloc(b).unwrap();
        t.on_free(a).unwrap();
        t.on_free(b).unwrap();
        assert_eq!(t.table_len(), 0);
        assert_eq!(t.peak_table_len(), 2);
    }

    #[test]
    fn invalid_extent_pointers_are_rejected() {
        let mut t = LivenessTracker::new(cfg());
        let dead = mk(0x1_0000, 256).invalidated();
        assert_eq!(t.on_malloc(dead), Err(HookError::InvalidExtent));
        assert_eq!(t.check_live(dead), Err(Violation::InvalidPointer { raw: dead.raw() }));
    }
}
