//! The pointer life cycle (paper Table I), as a typed state machine.
//!
//! Table I organizes memory-safety mechanisms by which life-cycle stage
//! they act on: *generation* (all mechanisms), *update* (pointer aligning,
//! pointer tracking), *dereference* (pointer/memory tagging, tripwires),
//! and *destruction* (canaries). LMI is unusual in acting at **every**
//! stage — this module makes that claim executable: a [`TrackedPtr`] can
//! only be produced by an aligned allocation, every update routes through
//! the OCU, every dereference through the EC, and destruction consumes the
//! value. The type system plays the role of the paper's
//! correct-by-construction argument.

use crate::ec::ExtentChecker;
use crate::error::Violation;
use crate::ocu::{Ocu, OcuOutcome};
use crate::ptr::{DevicePtr, PtrConfig, PtrError};

/// Which life-cycle stage an event belongs to (Table I's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Pointer generation (allocation).
    Generation,
    /// Pointer update (arithmetic, moves).
    Update,
    /// Pointer dereferencing (loads/stores).
    Dereference,
    /// Pointer destruction (free / scope exit).
    Destruction,
}

/// A pointer whose entire life cycle is mediated by LMI's checks.
///
/// ```
/// use lmi_core::lifecycle::{LifeCycle, Stage};
///
/// let mut lc = LifeCycle::default_config();
/// let p = lc.generate(0x4000, 1000)?;       // Generation: 2^n aligned
/// let p = lc.update(p, 512).unwrap();       // Update: OCU-checked
/// assert!(lc.dereference(&p).is_ok());      // Dereference: EC-checked
/// lc.destroy(p);                            // Destruction: extent dies
/// assert_eq!(lc.events(Stage::Update), 1);
/// # Ok::<(), lmi_core::PtrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackedPtr(DevicePtr);

impl TrackedPtr {
    /// The underlying pointer (read-only: updates go through
    /// [`LifeCycle::update`]).
    pub fn get(&self) -> DevicePtr {
        self.0
    }
}

/// The life-cycle mediator: owns the OCU/EC and counts stage events.
#[derive(Debug, Clone)]
pub struct LifeCycle {
    cfg: PtrConfig,
    ocu: Ocu,
    ec: ExtentChecker,
    counts: [u64; 4],
}

impl LifeCycle {
    /// A mediator over the given pointer format.
    pub fn new(cfg: PtrConfig) -> LifeCycle {
        LifeCycle { cfg, ocu: Ocu::new(cfg), ec: ExtentChecker::new(cfg), counts: [0; 4] }
    }

    /// A mediator with the default format (K = 256).
    pub fn default_config() -> LifeCycle {
        LifeCycle::new(PtrConfig::default())
    }

    fn bump(&mut self, stage: Stage) {
        self.counts[stage as usize] += 1;
    }

    /// Number of events seen at `stage`.
    pub fn events(&self, stage: Stage) -> u64 {
        self.counts[stage as usize]
    }

    /// **Generation**: mints a tracked pointer from an aligned allocation.
    /// The only way to obtain a [`TrackedPtr`] — immediate values cannot
    /// become pointers (§XII-B).
    ///
    /// # Errors
    ///
    /// Propagates [`PtrError`] for misaligned or oversized allocations.
    pub fn generate(&mut self, addr: u64, size: u64) -> Result<TrackedPtr, PtrError> {
        self.bump(Stage::Generation);
        DevicePtr::encode(addr, size, &self.cfg).map(TrackedPtr)
    }

    /// **Update**: pointer arithmetic through the OCU. An escaping update
    /// returns the poisoned pointer (delayed termination: no error yet).
    pub fn update(&mut self, p: TrackedPtr, delta: i64) -> Result<TrackedPtr, TrackedPtr> {
        self.bump(Stage::Update);
        let (raw, outcome) = self.ocu.check_marked(p.0.raw(), p.0.raw().wrapping_add(delta as u64));
        let next = TrackedPtr(DevicePtr::from_raw(raw));
        if outcome == OcuOutcome::Poisoned {
            Err(next)
        } else {
            Ok(next)
        }
    }

    /// **Dereference**: the EC's validity check.
    ///
    /// # Errors
    ///
    /// The violation the EC raises for poisoned/destroyed pointers.
    pub fn dereference(&mut self, p: &TrackedPtr) -> Result<u64, Violation> {
        self.bump(Stage::Dereference);
        self.ec.check_access(p.0.raw())
    }

    /// **Destruction**: consumes the pointer; its extent dies with it.
    /// Returns the dead pointer value for inspection (its extent is 0).
    pub fn destroy(&mut self, p: TrackedPtr) -> DevicePtr {
        self.bump(Stage::Destruction);
        p.0.invalidated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_life_cycle_counts_every_stage() {
        let mut lc = LifeCycle::default_config();
        let p = lc.generate(0x10_0000, 4096).unwrap();
        let p = lc.update(p, 100).unwrap();
        let p = lc.update(p, 100).unwrap();
        assert!(lc.dereference(&p).is_ok());
        lc.destroy(p);
        assert_eq!(lc.events(Stage::Generation), 1);
        assert_eq!(lc.events(Stage::Update), 2);
        assert_eq!(lc.events(Stage::Dereference), 1);
        assert_eq!(lc.events(Stage::Destruction), 1);
    }

    #[test]
    fn escaping_update_hands_back_a_poisoned_pointer() {
        let mut lc = LifeCycle::default_config();
        let p = lc.generate(0x10_0000, 256).unwrap();
        let poisoned = lc.update(p, 256).unwrap_err();
        assert!(lc.dereference(&poisoned).is_err(), "the EC faults the use");
    }

    #[test]
    fn destroyed_pointers_cannot_be_dereferenced() {
        let mut lc = LifeCycle::default_config();
        let p = lc.generate(0x10_0000, 256).unwrap();
        let dead = lc.destroy(p);
        // `destroy` consumed the TrackedPtr; only the dead DevicePtr
        // remains, and the EC rejects it.
        assert!(ExtentChecker::new(PtrConfig::default()).check_access(dead.raw()).is_err());
    }

    #[test]
    fn generation_enforces_alignment() {
        let mut lc = LifeCycle::default_config();
        assert!(lc.generate(0x10_0001, 256).is_err(), "unaligned base rejected");
    }
}
