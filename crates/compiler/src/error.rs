//! Compiler diagnostics.

use std::fmt;

use crate::ir::ValueId;

/// Errors raised by the LMI pass or the backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A `ptrtoint` instruction was found — forbidden by LMI's
    /// correct-by-construction rule (paper §XII-B).
    PtrToIntForbidden {
        /// The offending instruction.
        inst: ValueId,
    },
    /// An `inttoptr` instruction was found (paper §XII-B: immediate-value
    /// pointer assignment would bypass extent verification).
    IntToPtrForbidden {
        /// The offending instruction.
        inst: ValueId,
    },
    /// A pointer value is stored to memory — LMI restricts in-memory
    /// pointers (paper §VI-A).
    PointerStoredToMemory {
        /// The offending store instruction.
        inst: ValueId,
    },
    /// The kernel needs more registers than the architecture provides.
    OutOfRegisters,
    /// Internal type error in the IR (builder misuse).
    TypeMismatch(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::PtrToIntForbidden { inst } => {
                write!(f, "ptrtoint at value %{inst} violates correct-by-construction")
            }
            CompileError::IntToPtrForbidden { inst } => {
                write!(f, "inttoptr at value %{inst} violates correct-by-construction")
            }
            CompileError::PointerStoredToMemory { inst } => {
                write!(f, "store of a pointer value at %{inst}; LMI forbids in-memory pointers")
            }
            CompileError::OutOfRegisters => write!(f, "kernel exceeds the register budget"),
            CompileError::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}
