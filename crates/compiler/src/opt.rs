//! IR optimizations: constant folding and dead-code elimination.
//!
//! Production GPU compilers run these before the LMI pass; they matter here
//! because (a) they shrink the marked-instruction count the way `nvcc -O3`
//! would (fewer OCU checks without losing coverage — folding never removes
//! a *pointer* operation, only scalar arithmetic), and (b) they exercise
//! the pass pipeline the way a real toolchain orders it.

use crate::ir::{Function, IBinOp, InstKind, Terminator, ValueId};

/// Counts of applied rewrites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Integer operations folded to constants.
    pub folded: usize,
    /// Instructions removed as dead.
    pub eliminated: usize,
}

/// Folds integer arithmetic over constant operands. Pointer-typed results
/// are never folded (extents are runtime values).
pub fn fold_constants(func: &mut Function) -> usize {
    let mut folded = 0;
    loop {
        let mut changed = false;
        for v in 0..func.insts.len() {
            let InstKind::IBin { op, a, b } = func.insts[v].kind else {
                continue;
            };
            if func.insts[v].ty.map(|t| t.is_ptr()).unwrap_or(true) {
                continue;
            }
            let (Some(ca), Some(cb)) = (const_of(func, a), const_of(func, b)) else {
                continue;
            };
            let result = eval(op, ca, cb);
            func.insts[v].kind = InstKind::ConstI32(result);
            folded += 1;
            changed = true;
        }
        if !changed {
            return folded;
        }
    }
}

fn const_of(func: &Function, v: ValueId) -> Option<i32> {
    match func.insts[v].kind {
        InstKind::ConstI32(c) => Some(c),
        _ => None,
    }
}

fn eval(op: IBinOp, a: i32, b: i32) -> i32 {
    match op {
        IBinOp::Add => a.wrapping_add(b),
        IBinOp::Sub => a.wrapping_sub(b),
        IBinOp::Mul => a.wrapping_mul(b),
        IBinOp::And => a & b,
        IBinOp::Or => a | b,
        IBinOp::Xor => a ^ b,
        IBinOp::Shl => a.wrapping_shl(b as u32 & 31),
        IBinOp::Shr => ((a as u32).wrapping_shr(b as u32 & 31)) as i32,
    }
}

/// Removes instructions whose results are never used and that have no side
/// effects. Writes to variables that are never read are dead too (fixpoint
/// across the read/write graph).
pub fn eliminate_dead_code(func: &mut Function) -> usize {
    let n = func.insts.len();
    let mut live = vec![false; n];
    let mut var_read = vec![false; func.vars.len()];

    // Seed: side-effecting instructions and terminator operands.
    let mark_operands = |kind: &InstKind, work: &mut Vec<ValueId>| match *kind {
        InstKind::Store { ptr, value, .. } => {
            work.push(ptr);
            work.push(value);
        }
        InstKind::Free { ptr } | InstKind::Invalidate { ptr } => work.push(ptr),
        InstKind::Malloc { size } => work.push(size),
        InstKind::WriteVar { value, .. } => work.push(value),
        InstKind::Gep { ptr, index, .. } => {
            work.push(ptr);
            work.push(index);
        }
        InstKind::IBin { a, b, .. } | InstKind::FBin { a, b, .. } | InstKind::Cmp { a, b, .. } => {
            work.push(a);
            work.push(b);
        }
        InstKind::Load { ptr, .. } => work.push(ptr),
        InstKind::PtrToInt { ptr } => work.push(ptr),
        InstKind::IntToPtr { value, .. } => work.push(value),
        _ => {}
    };

    loop {
        let mut work: Vec<ValueId> = Vec::new();
        for (v, inst) in func.insts.iter().enumerate() {
            let side_effecting = match inst.kind {
                InstKind::Store { .. }
                | InstKind::Free { .. }
                | InstKind::Malloc { .. }
                | InstKind::Invalidate { .. }
                | InstKind::Alloca { .. }
                | InstKind::SharedAlloc { .. } => true,
                // A write is an effect only if its variable is ever read
                // by a live instruction.
                InstKind::WriteVar { var, .. } => var_read[var],
                _ => false,
            };
            if side_effecting && !live[v] {
                live[v] = true;
                mark_operands(&func.insts[v].kind.clone(), &mut work);
            }
        }
        for block in &func.blocks {
            if let Terminator::Branch { cond, .. } = block.term {
                if !live[cond] {
                    live[cond] = true;
                    mark_operands(&func.insts[cond].kind.clone(), &mut work);
                }
            }
        }
        while let Some(v) = work.pop() {
            if live[v] {
                continue;
            }
            live[v] = true;
            mark_operands(&func.insts[v].kind.clone(), &mut work);
        }

        // Propagate variable readness from live ReadVars and iterate.
        let mut changed = false;
        for (v, inst) in func.insts.iter().enumerate() {
            if let InstKind::ReadVar(var) = inst.kind {
                if live[v] && !var_read[var] {
                    var_read[var] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut removed = 0;
    for block in &mut func.blocks {
        block.insts.retain(|&v| {
            if live[v] {
                true
            } else {
                removed += 1;
                false
            }
        });
    }
    removed
}

/// Runs folding and DCE to a fixpoint.
pub fn optimize(func: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    loop {
        let folded = fold_constants(func);
        let eliminated = eliminate_dead_code(func);
        stats.folded += folded;
        stats.eliminated += eliminated;
        if folded == 0 && eliminated == 0 {
            return stats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FunctionBuilder, Region, Ty};
    use crate::pass::analyze;

    #[test]
    fn constants_fold_transitively() {
        let mut b = FunctionBuilder::new("k");
        let p = b.param(Ty::Ptr(Region::Global));
        let two = b.const_i32(2);
        let three = b.const_i32(3);
        let six = b.ibin(IBinOp::Mul, two, three);
        let seven = b.const_i32(1);
        let total = b.ibin(IBinOp::Add, six, seven); // (2*3)+1 = 7
        let e = b.gep(p, total, 4);
        let z = b.const_i32(0);
        b.store(e, z, 4);
        b.ret();
        let mut f = b.build();
        let stats = optimize(&mut f);
        assert_eq!(stats.folded, 2);
        assert!(matches!(f.insts[total].kind, InstKind::ConstI32(7)));
    }

    #[test]
    fn dead_arithmetic_is_removed_but_effects_stay() {
        let mut b = FunctionBuilder::new("k");
        let p = b.param(Ty::Ptr(Region::Global));
        let a = b.const_i32(10);
        let bb = b.const_i32(20);
        let _dead = b.ibin(IBinOp::Add, a, bb); // never used
        let tid = b.tid();
        let e = b.gep(p, tid, 4);
        b.store(e, tid, 4);
        b.ret();
        let mut f = b.build();
        let before = f.blocks[0].insts.len();
        let stats = optimize(&mut f);
        assert!(stats.eliminated >= 1);
        assert!(f.blocks[0].insts.len() < before);
        // The store and its operands survive.
        assert!(f.blocks[0]
            .insts
            .iter()
            .any(|&v| matches!(f.insts[v].kind, InstKind::Store { .. })));
    }

    #[test]
    fn unread_variable_writes_die_with_their_chains() {
        let mut b = FunctionBuilder::new("k");
        let zero = b.const_i32(0);
        let v = b.var(zero); // never read
        let one = b.const_i32(1);
        b.write_var(v, one);
        b.ret();
        let mut f = b.build();
        let stats = optimize(&mut f);
        assert!(stats.eliminated >= 2, "both writes and the constants die");
        assert!(f.blocks[0].insts.is_empty());
    }

    #[test]
    fn pointer_arithmetic_is_never_folded_away() {
        // Even with constant operands, pointer ops stay (they carry runtime
        // extents and must be OCU-checked).
        let mut b = FunctionBuilder::new("k");
        let p = b.param(Ty::Ptr(Region::Heap));
        let four = b.const_i32(4);
        let q = b.ibin(IBinOp::Add, p, four);
        let z = b.const_i32(0);
        b.store(q, z, 4);
        b.ret();
        let mut f = b.build();
        optimize(&mut f);
        assert!(matches!(f.insts[q].kind, InstKind::IBin { .. }));
        // And it is still marked by the analysis afterwards.
        let analysis = analyze(&f).unwrap();
        assert_eq!(analysis.pointer_operand(q), Some(0));
    }

    #[test]
    fn loop_variables_survive() {
        use crate::ir::CmpKind;
        let mut b = FunctionBuilder::new("k");
        let zero = b.const_i32(0);
        let i = b.var(zero);
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(body);
        b.switch_to(body);
        let iv = b.read_var(i);
        let one = b.const_i32(1);
        let next = b.ibin(IBinOp::Add, iv, one);
        b.write_var(i, next);
        let n = b.const_i32(4);
        let c = b.cmp(CmpKind::Lt, next, n);
        b.branch(c, body, exit);
        b.switch_to(exit);
        b.ret();
        let mut f = b.build();
        let before: usize = f.blocks.iter().map(|bl| bl.insts.len()).sum();
        optimize(&mut f);
        let after: usize = f.blocks.iter().map(|bl| bl.insts.len()).sum();
        assert_eq!(before, after, "a live loop is untouched");
    }
}
