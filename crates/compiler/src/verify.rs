//! Structural IR validation.
//!
//! The [`crate::ir::FunctionBuilder`] maintains most invariants by
//! construction, but IR can also arrive from transformation passes or be
//! assembled programmatically; [`verify`] checks the invariants the rest of
//! the compiler assumes before analysis and codegen run.

use std::fmt;

use crate::ir::{Function, InstKind, Terminator, Ty, ValueId};

/// A structural defect found in a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A block's instruction list references an out-of-range value id.
    DanglingInst {
        /// The block.
        block: usize,
        /// The bad id.
        inst: ValueId,
    },
    /// An instruction uses a value that is not defined before it in
    /// program order.
    UseBeforeDef {
        /// The using instruction.
        user: ValueId,
        /// The undefined operand.
        operand: ValueId,
    },
    /// A terminator targets a nonexistent block.
    BadBranchTarget {
        /// The branching block.
        block: usize,
        /// The missing target.
        target: usize,
    },
    /// A block was left unterminated.
    Unterminated {
        /// The block.
        block: usize,
    },
    /// A branch condition is not a `Bool`.
    NonBoolCondition {
        /// The branching block.
        block: usize,
    },
    /// A variable id exceeds the declared variable count.
    BadVariable {
        /// The instruction.
        inst: ValueId,
        /// The bad variable id.
        var: usize,
    },
    /// A value id appears in more than one block (SSA values have a single
    /// definition point).
    Redefined {
        /// The value.
        inst: ValueId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::DanglingInst { block, inst } => {
                write!(f, "bb{block} references out-of-range value %{inst}")
            }
            VerifyError::UseBeforeDef { user, operand } => {
                write!(f, "%{user} uses %{operand} before its definition")
            }
            VerifyError::BadBranchTarget { block, target } => {
                write!(f, "bb{block} branches to nonexistent bb{target}")
            }
            VerifyError::Unterminated { block } => write!(f, "bb{block} lacks a terminator"),
            VerifyError::NonBoolCondition { block } => {
                write!(f, "bb{block}'s branch condition is not a bool")
            }
            VerifyError::BadVariable { inst, var } => {
                write!(f, "%{inst} references undeclared variable v{var}")
            }
            VerifyError::Redefined { inst } => write!(f, "%{inst} is placed more than once"),
        }
    }
}

impl std::error::Error for VerifyError {}

fn operands(kind: &InstKind) -> Vec<ValueId> {
    match *kind {
        InstKind::Malloc { size } => vec![size],
        InstKind::Free { ptr } | InstKind::Invalidate { ptr } | InstKind::PtrToInt { ptr } => {
            vec![ptr]
        }
        InstKind::IntToPtr { value, .. } => vec![value],
        InstKind::Gep { ptr, index, .. } => vec![ptr, index],
        InstKind::IBin { a, b, .. } | InstKind::FBin { a, b, .. } | InstKind::Cmp { a, b, .. } => {
            vec![a, b]
        }
        InstKind::Load { ptr, .. } => vec![ptr],
        InstKind::Store { ptr, value, .. } => vec![ptr, value],
        InstKind::WriteVar { value, .. } => vec![value],
        _ => Vec::new(),
    }
}

/// Verifies a function's structural invariants.
///
/// Uses a conservative dominance approximation: a use is considered
/// defined if its definition appears earlier in the flattened
/// block-by-block program order — exact for the builder's output, where
/// values are created at their insertion point.
///
/// # Errors
///
/// The first [`VerifyError`] found.
pub fn verify(func: &Function) -> Result<(), VerifyError> {
    let n = func.insts.len();
    let mut placed = vec![false; n];
    let mut defined = vec![false; n];

    for (b, block) in func.blocks.iter().enumerate() {
        for &v in &block.insts {
            if v >= n {
                return Err(VerifyError::DanglingInst { block: b, inst: v });
            }
            if placed[v] {
                return Err(VerifyError::Redefined { inst: v });
            }
            placed[v] = true;
            for op in operands(&func.insts[v].kind) {
                if op >= n || !defined[op] {
                    return Err(VerifyError::UseBeforeDef { user: v, operand: op });
                }
            }
            match func.insts[v].kind {
                InstKind::ReadVar(var) | InstKind::WriteVar { var, .. }
                    if var >= func.vars.len() =>
                {
                    return Err(VerifyError::BadVariable { inst: v, var });
                }
                _ => {}
            }
            defined[v] = true;
        }
        match block.term {
            Terminator::Jump(t) => {
                if t >= func.blocks.len() {
                    return Err(VerifyError::BadBranchTarget { block: b, target: t });
                }
            }
            Terminator::Branch { cond, then_, else_ } => {
                for t in [then_, else_] {
                    if t >= func.blocks.len() {
                        return Err(VerifyError::BadBranchTarget { block: b, target: t });
                    }
                }
                if cond >= n || func.insts[cond].ty != Some(Ty::Bool) {
                    return Err(VerifyError::NonBoolCondition { block: b });
                }
            }
            Terminator::Ret => {}
            Terminator::Unterminated => return Err(VerifyError::Unterminated { block: b }),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Block, CmpKind, FunctionBuilder, IBinOp, Inst, Region};
    use crate::pass::transform;

    fn wellformed() -> Function {
        let mut b = FunctionBuilder::new("ok");
        let p = b.param(Ty::Ptr(Region::Global));
        let tid = b.tid();
        let e = b.gep(p, tid, 4);
        let v = b.load_i32(e);
        let one = b.const_i32(1);
        let s = b.ibin(IBinOp::Add, v, one);
        b.store(e, s, 4);
        let zero = b.const_i32(0);
        let c = b.cmp(CmpKind::Eq, s, zero);
        let t = b.new_block();
        let f = b.new_block();
        b.branch(c, t, f);
        b.switch_to(t);
        b.ret();
        b.switch_to(f);
        b.ret();
        b.build()
    }

    #[test]
    fn builder_output_verifies() {
        assert_eq!(verify(&wellformed()), Ok(()));
    }

    #[test]
    fn transformed_output_still_verifies() {
        let mut f = wellformed();
        transform(&mut f);
        assert_eq!(verify(&f), Ok(()));
    }

    #[test]
    fn optimized_output_still_verifies() {
        let mut f = wellformed();
        crate::opt::optimize(&mut f);
        assert_eq!(verify(&f), Ok(()));
    }

    #[test]
    fn dangling_value_detected() {
        let mut f = wellformed();
        f.blocks[0].insts.push(9999);
        assert!(matches!(verify(&f), Err(VerifyError::DanglingInst { .. })));
    }

    #[test]
    fn use_before_def_detected() {
        let mut f = wellformed();
        // Move the first block's last instruction to the front.
        let moved = f.blocks[0].insts.pop().unwrap();
        f.blocks[0].insts.insert(0, moved);
        assert!(matches!(verify(&f), Err(VerifyError::UseBeforeDef { .. })));
    }

    #[test]
    fn bad_branch_target_detected() {
        let mut f = wellformed();
        if let Terminator::Branch { then_, .. } = &mut f.blocks[0].term {
            *then_ = 99;
        }
        assert!(matches!(verify(&f), Err(VerifyError::BadBranchTarget { .. })));
    }

    #[test]
    fn double_placement_detected() {
        let mut f = wellformed();
        let dup = f.blocks[0].insts[0];
        f.blocks[0].insts.push(dup);
        assert!(matches!(verify(&f), Err(VerifyError::Redefined { .. })));
    }

    #[test]
    fn unterminated_block_detected() {
        let mut f = wellformed();
        f.blocks.push(Block { insts: Vec::new(), term: Terminator::Unterminated });
        assert!(matches!(verify(&f), Err(VerifyError::Unterminated { .. })));
    }

    #[test]
    fn bad_variable_detected() {
        let mut f = wellformed();
        let id = f.insts.len();
        f.insts.push(Inst { kind: InstKind::ReadVar(42), ty: Some(Ty::I32) });
        f.blocks[0].insts.push(id);
        assert!(matches!(verify(&f), Err(VerifyError::BadVariable { .. })));
    }
}
