//! # lmi-compiler — the kernel IR and the LMI compiler pass
//!
//! LMI needs compiler support for three things (paper §VI):
//!
//! 1. **Pointer-operand analysis** (Fig. 8): a dataflow pass over the kernel
//!    IR identifies every instruction that performs pointer arithmetic and
//!    records *which* operand holds the pointer. The result is delivered to
//!    the backend as metadata and becomes the `A`/`S` hint bits in the
//!    instruction microcode.
//! 2. **Aligned stack allocation** (Fig. 7): stack buffers are rounded up to
//!    powers of two and laid out so every buffer is size-aligned; the
//!    prologue reserves the whole frame by subtracting from the stack top
//!    read from constant bank 0.
//! 3. **Temporal-safety instrumentation** (§VIII): an extent-nullifying
//!    instruction is inserted after every `free()` and before returns that
//!    end frames holding stack buffers.
//!
//! The pass also enforces LMI's correct-by-construction restrictions
//! (§VI-A, §XII-B): `ptrtoint`/`inttoptr` casts and storing pointers to
//! memory are compile errors.
//!
//! ## Example
//!
//! ```
//! use lmi_compiler::ir::{FunctionBuilder, Region, Ty};
//! use lmi_compiler::pass::analyze;
//!
//! // __global__ void scale(float* data) { data[tid] *= 2.0f; }
//! let mut b = FunctionBuilder::new("scale");
//! let data = b.param(Ty::Ptr(Region::Global));
//! let tid = b.tid();
//! let elem = b.gep(data, tid, 4);
//! let v = b.load_f32(elem);
//! let two = b.const_f32(2.0);
//! let scaled = b.fmul(v, two);
//! b.store(elem, scaled, 4);
//! b.ret();
//! let func = b.build();
//!
//! let analysis = analyze(&func)?;
//! assert!(analysis.is_pointer(elem));
//! assert_eq!(analysis.pointer_operand(elem), Some(0)); // S bit = 0
//! # Ok::<(), lmi_compiler::CompileError>(())
//! ```

pub mod codegen;
pub mod error;
pub mod ir;
pub mod opt;
pub mod pass;
pub mod verify;

pub use codegen::{compile, CompileOptions, CompiledKernel};
pub use error::CompileError;
pub use ir::{Function, FunctionBuilder, Region, Ty, ValueId};
pub use opt::{optimize, OptStats};
pub use pass::{analyze, cast_census, transform, CastCensus, PointerAnalysis};
pub use verify::{verify, VerifyError};
