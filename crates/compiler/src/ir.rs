//! A small SSA kernel IR, shaped like the LLVM subset GPU kernels compile
//! to: straight-line arithmetic, GEP-style pointer arithmetic, loads/stores
//! per memory region, allocas, device `malloc`/`free`, and structured
//! control flow.
//!
//! Mutable scalars are modeled with explicit *vars* (register-resident
//! slots, as in pre-`mem2reg` LLVM but without memory traffic) so the
//! pointer-ness analysis has real dataflow to chew on without needing phis.

use std::fmt;

/// Index of an instruction (and of the value it produces).
pub type ValueId = usize;

/// Index of a basic block.
pub type BlockId = usize;

/// Index of a mutable register-resident variable.
pub type VarId = usize;

/// Memory region a pointer refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Global memory (`cudaMalloc` buffers passed as kernel arguments).
    Global,
    /// Per-block shared memory.
    Shared,
    /// Per-thread local/stack memory.
    Local,
    /// Device heap (in-kernel `malloc`).
    Heap,
}

/// Value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 32-bit integer.
    I32,
    /// 64-bit integer (non-pointer).
    I64,
    /// 32-bit float.
    F32,
    /// Pointer into `Region`.
    Ptr(Region),
    /// Comparison result (usable only by `branch`).
    Bool,
}

impl Ty {
    /// Returns `true` for pointer types.
    pub fn is_ptr(self) -> bool {
        matches!(self, Ty::Ptr(_))
    }
}

/// Integer binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IBinOp {
    /// Addition (becomes pointer arithmetic when an operand is a pointer).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift.
    Shl,
    /// Logical right shift.
    Shr,
}

/// Float binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FBinOp {
    /// Addition.
    Add,
    /// Multiplication.
    Mul,
}

/// Comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
}

/// Instruction kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// 32-bit integer constant.
    ConstI32(i32),
    /// 64-bit integer constant.
    ConstI64(i64),
    /// 32-bit float constant.
    ConstF32(f32),
    /// Kernel parameter `index` (type recorded in the function signature).
    Param(usize),
    /// Thread index within the block.
    Tid,
    /// Block index.
    CtaId,
    /// Threads per block.
    NTid,
    /// Stack buffer of `size` bytes; yields a `Ptr(Local)`.
    Alloca {
        /// Requested size in bytes.
        size: u64,
    },
    /// Static shared buffer of `size` bytes; yields a `Ptr(Shared)`.
    SharedAlloc {
        /// Requested size in bytes.
        size: u64,
    },
    /// Device-heap allocation; yields a `Ptr(Heap)`.
    Malloc {
        /// Size value (i32).
        size: ValueId,
    },
    /// Device-heap free.
    Free {
        /// Pointer to free.
        ptr: ValueId,
    },
    /// `ptr + index * scale` — pointer arithmetic.
    Gep {
        /// Base pointer.
        ptr: ValueId,
        /// Element index (i32).
        index: ValueId,
        /// Element size in bytes.
        scale: u8,
    },
    /// Integer add with explicit operand order (exercises the S hint bit
    /// when the pointer is the *second* operand).
    IBin {
        /// Operation.
        op: IBinOp,
        /// Left operand.
        a: ValueId,
        /// Right operand.
        b: ValueId,
    },
    /// Float arithmetic.
    FBin {
        /// Operation.
        op: FBinOp,
        /// Left operand.
        a: ValueId,
        /// Right operand.
        b: ValueId,
    },
    /// Comparison producing a `Bool` for `branch`.
    Cmp {
        /// Predicate.
        kind: CmpKind,
        /// Left operand.
        a: ValueId,
        /// Right operand.
        b: ValueId,
    },
    /// Load of `width` bytes through `ptr`.
    Load {
        /// Address.
        ptr: ValueId,
        /// Access width in bytes.
        width: u8,
    },
    /// Store of `value` (`width` bytes) through `ptr`.
    Store {
        /// Address.
        ptr: ValueId,
        /// Value to store.
        value: ValueId,
        /// Access width in bytes.
        width: u8,
    },
    /// Forbidden cast: pointer to integer (the pass rejects it, §XII-B).
    PtrToInt {
        /// Source pointer.
        ptr: ValueId,
    },
    /// Forbidden cast: integer to pointer (the pass rejects it, §XII-B).
    IntToPtr {
        /// Source integer.
        value: ValueId,
        /// Claimed region.
        region: Region,
    },
    /// Read a mutable variable.
    ReadVar(VarId),
    /// Write a mutable variable (effect only).
    WriteVar {
        /// Destination variable.
        var: VarId,
        /// Stored value.
        value: ValueId,
    },
    /// Extent nullification (inserted by [`crate::pass::transform`]).
    Invalidate {
        /// The pointer value whose register extent is cleared.
        ptr: ValueId,
    },
}

/// An instruction plus the type of the value it produces (if any).
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// Operation.
    pub kind: InstKind,
    /// Result type (`None` for effect-only instructions).
    pub ty: Option<Ty>,
}

/// Block terminators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a `Bool` value.
    Branch {
        /// Condition.
        cond: ValueId,
        /// Target when true.
        then_: BlockId,
        /// Target when false.
        else_: BlockId,
    },
    /// Return from the kernel.
    Ret,
    /// Placeholder while the block is under construction.
    Unterminated,
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Instructions in order.
    pub insts: Vec<ValueId>,
    /// The terminator.
    pub term: Terminator,
}

/// A kernel function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Kernel name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Variable types.
    pub vars: Vec<Ty>,
    /// Instruction arena (`ValueId` indexes it).
    pub insts: Vec<Inst>,
    /// Basic blocks (`BlockId` indexes it); block 0 is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Iterates over `(block, position, value)` in program order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (BlockId, usize, ValueId)> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(b, block)| block.insts.iter().enumerate().map(move |(i, &v)| (b, i, v)))
    }

    /// Number of instructions reachable from the block lists — the "IR op
    /// count" the conformance shrinker minimizes (dead arena entries whose
    /// values no block references are not lowered and do not count).
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Total stack bytes requested by allocas (unaligned).
    pub fn alloca_bytes(&self) -> u64 {
        self.insts
            .iter()
            .filter_map(|inst| match inst.kind {
                InstKind::Alloca { size } => Some(size),
                _ => None,
            })
            .sum()
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel @{}({:?})", self.name, self.params)?;
        for (b, block) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{b}:")?;
            for &v in &block.insts {
                writeln!(f, "  %{v} = {:?}", self.insts[v].kind)?;
            }
            writeln!(f, "  {:?}", block.term)?;
        }
        Ok(())
    }
}

/// Builder for [`Function`].
///
/// Typed helper methods validate operand types as the function is built,
/// panicking on misuse (builder bugs are programmer errors, not input
/// errors).
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
}

impl FunctionBuilder {
    /// Starts a function with an empty entry block.
    pub fn new(name: impl Into<String>) -> FunctionBuilder {
        FunctionBuilder {
            func: Function {
                name: name.into(),
                params: Vec::new(),
                vars: Vec::new(),
                insts: Vec::new(),
                blocks: vec![Block { insts: Vec::new(), term: Terminator::Unterminated }],
            },
            current: 0,
        }
    }

    fn ty_of(&self, v: ValueId) -> Ty {
        self.func.insts[v].ty.expect("operand must produce a value")
    }

    fn push(&mut self, kind: InstKind, ty: Option<Ty>) -> ValueId {
        let id = self.func.insts.len();
        self.func.insts.push(Inst { kind, ty });
        self.func.blocks[self.current].insts.push(id);
        id
    }

    /// Declares a kernel parameter; returns its value.
    pub fn param(&mut self, ty: Ty) -> ValueId {
        let index = self.func.params.len();
        self.func.params.push(ty);
        self.push(InstKind::Param(index), Some(ty))
    }

    /// Declares a mutable variable initialized with `init`.
    pub fn var(&mut self, init: ValueId) -> VarId {
        let ty = self.ty_of(init);
        let var = self.func.vars.len();
        self.func.vars.push(ty);
        self.push(InstKind::WriteVar { var, value: init }, None);
        var
    }

    /// Reads a variable.
    pub fn read_var(&mut self, var: VarId) -> ValueId {
        let ty = self.func.vars[var];
        self.push(InstKind::ReadVar(var), Some(ty))
    }

    /// Writes a variable.
    ///
    /// # Panics
    ///
    /// Panics if the value type differs from the variable's declared type.
    pub fn write_var(&mut self, var: VarId, value: ValueId) {
        assert_eq!(self.func.vars[var], self.ty_of(value), "var type mismatch");
        self.push(InstKind::WriteVar { var, value }, None);
    }

    /// 32-bit integer constant.
    pub fn const_i32(&mut self, v: i32) -> ValueId {
        self.push(InstKind::ConstI32(v), Some(Ty::I32))
    }

    /// 64-bit integer constant.
    pub fn const_i64(&mut self, v: i64) -> ValueId {
        self.push(InstKind::ConstI64(v), Some(Ty::I64))
    }

    /// Float constant.
    pub fn const_f32(&mut self, v: f32) -> ValueId {
        self.push(InstKind::ConstF32(v), Some(Ty::F32))
    }

    /// Thread index.
    pub fn tid(&mut self) -> ValueId {
        self.push(InstKind::Tid, Some(Ty::I32))
    }

    /// Block index.
    pub fn ctaid(&mut self) -> ValueId {
        self.push(InstKind::CtaId, Some(Ty::I32))
    }

    /// Threads per block.
    pub fn ntid(&mut self) -> ValueId {
        self.push(InstKind::NTid, Some(Ty::I32))
    }

    /// Stack buffer.
    pub fn alloca(&mut self, size: u64) -> ValueId {
        self.push(InstKind::Alloca { size }, Some(Ty::Ptr(Region::Local)))
    }

    /// Static shared buffer.
    pub fn shared_alloc(&mut self, size: u64) -> ValueId {
        self.push(InstKind::SharedAlloc { size }, Some(Ty::Ptr(Region::Shared)))
    }

    /// Device-heap allocation.
    pub fn malloc(&mut self, size: ValueId) -> ValueId {
        assert_eq!(self.ty_of(size), Ty::I32, "malloc size must be i32");
        self.push(InstKind::Malloc { size }, Some(Ty::Ptr(Region::Heap)))
    }

    /// Device-heap free.
    pub fn free(&mut self, ptr: ValueId) {
        assert!(self.ty_of(ptr).is_ptr(), "free takes a pointer");
        self.push(InstKind::Free { ptr }, None);
    }

    /// Pointer arithmetic: `ptr + index * scale`.
    pub fn gep(&mut self, ptr: ValueId, index: ValueId, scale: u8) -> ValueId {
        let ty = self.ty_of(ptr);
        assert!(ty.is_ptr(), "gep base must be a pointer");
        assert_eq!(self.ty_of(index), Ty::I32, "gep index must be i32");
        self.push(InstKind::Gep { ptr, index, scale }, Some(ty))
    }

    /// Integer arithmetic. When an operand is a pointer and `op` is
    /// `Add`/`Sub`, the result is a pointer (C pointer arithmetic).
    pub fn ibin(&mut self, op: IBinOp, a: ValueId, b: ValueId) -> ValueId {
        let ta = self.ty_of(a);
        let tb = self.ty_of(b);
        let ty = match (ta, tb) {
            (Ty::Ptr(r), _) | (_, Ty::Ptr(r)) if matches!(op, IBinOp::Add | IBinOp::Sub) => {
                Ty::Ptr(r)
            }
            (Ty::I32, Ty::I32) => Ty::I32,
            other => panic!("ibin type mismatch: {other:?}"),
        };
        self.push(InstKind::IBin { op, a, b }, Some(ty))
    }

    /// Float multiply.
    pub fn fmul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.fbin(FBinOp::Mul, a, b)
    }

    /// Float add.
    pub fn fadd(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.fbin(FBinOp::Add, a, b)
    }

    fn fbin(&mut self, op: FBinOp, a: ValueId, b: ValueId) -> ValueId {
        assert_eq!(self.ty_of(a), Ty::F32);
        assert_eq!(self.ty_of(b), Ty::F32);
        self.push(InstKind::FBin { op, a, b }, Some(Ty::F32))
    }

    /// Comparison for use by [`FunctionBuilder::branch`].
    pub fn cmp(&mut self, kind: CmpKind, a: ValueId, b: ValueId) -> ValueId {
        self.push(InstKind::Cmp { kind, a, b }, Some(Ty::Bool))
    }

    /// 32-bit load.
    pub fn load_i32(&mut self, ptr: ValueId) -> ValueId {
        assert!(self.ty_of(ptr).is_ptr());
        self.push(InstKind::Load { ptr, width: 4 }, Some(Ty::I32))
    }

    /// Float load.
    pub fn load_f32(&mut self, ptr: ValueId) -> ValueId {
        assert!(self.ty_of(ptr).is_ptr());
        self.push(InstKind::Load { ptr, width: 4 }, Some(Ty::F32))
    }

    /// 64-bit load (a line-straddling width when the address is not
    /// 8-aligned — the conformance generator exercises exactly that).
    pub fn load_i64(&mut self, ptr: ValueId) -> ValueId {
        assert!(self.ty_of(ptr).is_ptr());
        self.push(InstKind::Load { ptr, width: 8 }, Some(Ty::I64))
    }

    /// Store (width 4 or 8).
    pub fn store(&mut self, ptr: ValueId, value: ValueId, width: u8) {
        assert!(self.ty_of(ptr).is_ptr());
        self.push(InstKind::Store { ptr, value, width }, None);
    }

    /// Forbidden `ptrtoint` (kept so the §XII-B rejection can be tested).
    pub fn ptr_to_int(&mut self, ptr: ValueId) -> ValueId {
        assert!(self.ty_of(ptr).is_ptr());
        self.push(InstKind::PtrToInt { ptr }, Some(Ty::I64))
    }

    /// Forbidden `inttoptr` (kept so the §XII-B rejection can be tested).
    pub fn int_to_ptr(&mut self, value: ValueId, region: Region) -> ValueId {
        self.push(InstKind::IntToPtr { value, region }, Some(Ty::Ptr(region)))
    }

    /// Creates a new (empty, unterminated) block; building continues in the
    /// current block until [`FunctionBuilder::switch_to`].
    pub fn new_block(&mut self) -> BlockId {
        self.func.blocks.push(Block { insts: Vec::new(), term: Terminator::Unterminated });
        self.func.blocks.len() - 1
    }

    /// Moves the insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// Terminates the current block with a jump.
    pub fn jump(&mut self, target: BlockId) {
        self.func.blocks[self.current].term = Terminator::Jump(target);
    }

    /// Terminates the current block with a conditional branch.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not a `Bool`.
    pub fn branch(&mut self, cond: ValueId, then_: BlockId, else_: BlockId) {
        assert_eq!(self.ty_of(cond), Ty::Bool, "branch condition must be a cmp");
        self.func.blocks[self.current].term = Terminator::Branch { cond, then_, else_ };
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self) {
        self.func.blocks[self.current].term = Terminator::Ret;
    }

    /// Finalizes the function.
    ///
    /// # Panics
    ///
    /// Panics if any block is unterminated.
    pub fn build(self) -> Function {
        for (i, block) in self.func.blocks.iter().enumerate() {
            assert_ne!(block.term, Terminator::Unterminated, "bb{i} lacks a terminator");
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_well_formed_functions() {
        let mut b = FunctionBuilder::new("k");
        let p = b.param(Ty::Ptr(Region::Global));
        let t = b.tid();
        let e = b.gep(p, t, 4);
        let v = b.load_i32(e);
        let one = b.const_i32(1);
        let v2 = b.ibin(IBinOp::Add, v, one);
        b.store(e, v2, 4);
        b.ret();
        let f = b.build();
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].term, Terminator::Ret);
        assert!(f.iter_insts().count() >= 7);
    }

    #[test]
    fn pointer_add_produces_pointer() {
        let mut b = FunctionBuilder::new("k");
        let p = b.param(Ty::Ptr(Region::Heap));
        let four = b.const_i32(4);
        let q = b.ibin(IBinOp::Add, four, p); // pointer in operand 1
        assert_eq!(b.func.insts[q].ty, Some(Ty::Ptr(Region::Heap)));
        b.ret();
        b.build();
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn unterminated_block_is_rejected() {
        let mut b = FunctionBuilder::new("k");
        b.new_block();
        b.ret(); // only terminates the entry block
        b.build();
    }

    #[test]
    fn vars_support_loop_style_dataflow() {
        let mut b = FunctionBuilder::new("k");
        let zero = b.const_i32(0);
        let i = b.var(zero);
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(body);
        b.switch_to(body);
        let iv = b.read_var(i);
        let one = b.const_i32(1);
        let next = b.ibin(IBinOp::Add, iv, one);
        b.write_var(i, next);
        let n = b.const_i32(10);
        let c = b.cmp(CmpKind::Lt, next, n);
        b.branch(c, body, exit);
        b.switch_to(exit);
        b.ret();
        let f = b.build();
        assert_eq!(f.vars.len(), 1);
        assert_eq!(f.blocks.len(), 3);
    }

    #[test]
    fn alloca_bytes_sums_requests() {
        let mut b = FunctionBuilder::new("k");
        b.alloca(96);
        b.alloca(300);
        b.ret();
        assert_eq!(b.build().alloca_bytes(), 396);
    }
}
