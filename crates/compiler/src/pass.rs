//! The LMI compiler pass (paper §VI, Fig. 8).
//!
//! [`analyze`] walks the kernel, propagates pointer-ness through the
//! dataflow (including mutable variables, the moral equivalent of LLVM's
//! `getOperand`-chasing in Fig. 8), records **which operand of every
//! pointer-arithmetic instruction holds the pointer** — the metadata that
//! becomes the backend's `A`/`S` hint bits — and enforces the
//! correct-by-construction restrictions:
//!
//! * `ptrtoint` / `inttoptr` are compile errors (§XII-B);
//! * storing a pointer to memory is a compile error (§VI-A).
//!
//! [`transform`] inserts the temporal-safety instrumentation of §VIII:
//! extent nullification after every `free()` and, for stack buffers, before
//! every return.

use std::collections::HashMap;

use crate::error::CompileError;
use crate::ir::{Function, Inst, InstKind, Terminator, ValueId};

/// Result of the pointer-operand analysis.
#[derive(Debug, Clone, Default)]
pub struct PointerAnalysis {
    pointer_values: Vec<bool>,
    /// value -> operand index (0/1) that carries the pointer.
    marks: HashMap<ValueId, u8>,
}

impl PointerAnalysis {
    /// Returns `true` if the value holds a pointer.
    pub fn is_pointer(&self, v: ValueId) -> bool {
        self.pointer_values.get(v).copied().unwrap_or(false)
    }

    /// For a pointer-arithmetic instruction: the operand index (0 or 1) that
    /// carries the incoming pointer — the future S hint bit.
    pub fn pointer_operand(&self, v: ValueId) -> Option<u8> {
        self.marks.get(&v).copied()
    }

    /// Number of instructions marked for OCU checking.
    pub fn marked_count(&self) -> usize {
        self.marks.len()
    }
}

/// Counts of forbidden casts (for the §XII-B corpus census, which reports
/// rather than rejects).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CastCensus {
    /// Number of `ptrtoint` instructions.
    pub ptrtoint: usize,
    /// Number of `inttoptr` instructions.
    pub inttoptr: usize,
}

impl CastCensus {
    /// Returns `true` when the kernel is cast-free (the common case the
    /// paper measured: 0 instances in 57 benchmark kernels).
    pub fn is_clean(&self) -> bool {
        self.ptrtoint == 0 && self.inttoptr == 0
    }
}

/// Scans a function for forbidden casts without failing.
pub fn cast_census(func: &Function) -> CastCensus {
    let mut census = CastCensus::default();
    for inst in &func.insts {
        match inst.kind {
            InstKind::PtrToInt { .. } => census.ptrtoint += 1,
            InstKind::IntToPtr { .. } => census.inttoptr += 1,
            _ => {}
        }
    }
    census
}

/// Runs the pointer-operand analysis and the correct-by-construction checks.
///
/// # Errors
///
/// * [`CompileError::PtrToIntForbidden`] / [`CompileError::IntToPtrForbidden`]
///   on forbidden casts;
/// * [`CompileError::PointerStoredToMemory`] when a pointer value is stored.
pub fn analyze(func: &Function) -> Result<PointerAnalysis, CompileError> {
    let mut analysis =
        PointerAnalysis { pointer_values: vec![false; func.insts.len()], marks: HashMap::new() };

    // Pointer-ness of mutable vars: fixpoint (a var becomes a pointer if any
    // write stores a pointer into it).
    let mut var_is_ptr = vec![false; func.vars.len()];
    loop {
        let mut changed = false;
        for (v, inst) in func.insts.iter().enumerate() {
            let is_ptr = value_is_pointer(inst, &analysis.pointer_values, &var_is_ptr);
            if is_ptr && !analysis.pointer_values[v] {
                analysis.pointer_values[v] = true;
                changed = true;
            }
            if let InstKind::WriteVar { var, value } = inst.kind {
                if analysis.pointer_values[value] && !var_is_ptr[var] {
                    var_is_ptr[var] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Second sweep: operand marking and restriction checks.
    for (v, inst) in func.insts.iter().enumerate() {
        match inst.kind {
            InstKind::PtrToInt { .. } => return Err(CompileError::PtrToIntForbidden { inst: v }),
            InstKind::IntToPtr { .. } => return Err(CompileError::IntToPtrForbidden { inst: v }),
            InstKind::Store { value, .. } if analysis.pointer_values[value] => {
                return Err(CompileError::PointerStoredToMemory { inst: v });
            }
            InstKind::Gep { .. } => {
                analysis.marks.insert(v, 0);
            }
            InstKind::IBin { a, b, .. } => {
                // Fig. 8's isPointerOperand(): find which input is the
                // pointer; both-pointer forms mark operand 0.
                if analysis.pointer_values[a] {
                    analysis.marks.insert(v, 0);
                } else if analysis.pointer_values[b] {
                    analysis.marks.insert(v, 1);
                }
            }
            _ => {}
        }
    }
    Ok(analysis)
}

fn value_is_pointer(inst: &Inst, values: &[bool], vars: &[bool]) -> bool {
    match inst.kind {
        InstKind::Param(_) => inst.ty.map(|t| t.is_ptr()).unwrap_or(false),
        InstKind::Alloca { .. }
        | InstKind::SharedAlloc { .. }
        | InstKind::Malloc { .. }
        | InstKind::Gep { .. }
        | InstKind::IntToPtr { .. } => true,
        InstKind::IBin { a, b, .. } => values[a] || values[b],
        InstKind::ReadVar(var) => vars[var],
        _ => false,
    }
}

/// Inserts the §VIII temporal-safety instrumentation:
///
/// * an [`InstKind::Invalidate`] after every `free(p)` (nullifies `p`'s
///   extent);
/// * before every `Ret`, an `Invalidate` for each stack buffer (allocas go
///   out of scope — use-after-scope protection).
///
/// Returns the number of instructions inserted.
pub fn transform(func: &mut Function) -> usize {
    let mut inserted = 0;

    // Invalidate after free: collect (block, position, ptr) sites first.
    let mut free_sites = Vec::new();
    for (b, i, v) in func.iter_insts() {
        if let InstKind::Free { ptr } = func.insts[v].kind {
            free_sites.push((b, i, ptr));
        }
    }
    // Insert back to front so positions stay valid.
    free_sites.sort_by(|x, y| y.cmp(x));
    for (b, i, ptr) in free_sites {
        let id = func.insts.len();
        func.insts.push(Inst { kind: InstKind::Invalidate { ptr }, ty: None });
        func.blocks[b].insts.insert(i + 1, id);
        inserted += 1;
    }

    // Invalidate allocas before returns.
    let allocas: Vec<ValueId> = func
        .insts
        .iter()
        .enumerate()
        .filter(|(_, inst)| matches!(inst.kind, InstKind::Alloca { .. }))
        .map(|(v, _)| v)
        .collect();
    if !allocas.is_empty() {
        for b in 0..func.blocks.len() {
            if func.blocks[b].term == Terminator::Ret {
                for &ptr in &allocas {
                    let id = func.insts.len();
                    func.insts.push(Inst { kind: InstKind::Invalidate { ptr }, ty: None });
                    func.blocks[b].insts.push(id);
                    inserted += 1;
                }
            }
        }
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FunctionBuilder, IBinOp, Region, Ty};

    #[test]
    fn gep_is_marked_with_operand_zero() {
        let mut b = FunctionBuilder::new("k");
        let p = b.param(Ty::Ptr(Region::Global));
        let t = b.tid();
        let e = b.gep(p, t, 4);
        b.ret();
        let f = b.build();
        let a = analyze(&f).unwrap();
        assert!(a.is_pointer(e));
        assert_eq!(a.pointer_operand(e), Some(0));
        assert_eq!(a.marked_count(), 1);
    }

    #[test]
    fn ibin_marks_the_pointer_operand_side() {
        let mut b = FunctionBuilder::new("k");
        let p = b.param(Ty::Ptr(Region::Heap));
        let four = b.const_i32(4);
        let q0 = b.ibin(IBinOp::Add, p, four); // pointer left -> S=0
        let q1 = b.ibin(IBinOp::Add, four, p); // pointer right -> S=1
        b.ret();
        let f = b.build();
        let a = analyze(&f).unwrap();
        assert_eq!(a.pointer_operand(q0), Some(0));
        assert_eq!(a.pointer_operand(q1), Some(1));
    }

    #[test]
    fn pointerness_flows_through_vars() {
        let mut b = FunctionBuilder::new("k");
        let p = b.param(Ty::Ptr(Region::Global));
        let cur = b.var(p);
        let r = b.read_var(cur);
        let four = b.const_i32(4);
        let next = b.ibin(IBinOp::Add, r, four);
        b.write_var(cur, next);
        let again = b.read_var(cur);
        b.ret();
        let f = b.build();
        let a = analyze(&f).unwrap();
        assert!(a.is_pointer(r));
        assert!(a.is_pointer(next));
        assert!(a.is_pointer(again));
        assert_eq!(a.pointer_operand(next), Some(0));
    }

    #[test]
    fn non_pointer_arithmetic_is_never_marked() {
        let mut b = FunctionBuilder::new("k");
        let x = b.const_i32(3);
        let y = b.const_i32(4);
        let z = b.ibin(IBinOp::Mul, x, y);
        let w = b.ibin(IBinOp::Add, z, x);
        b.ret();
        let f = b.build();
        let a = analyze(&f).unwrap();
        assert!(!a.is_pointer(z));
        assert!(!a.is_pointer(w));
        assert_eq!(a.marked_count(), 0, "no false hint bits");
    }

    #[test]
    fn ptrtoint_is_a_compile_error() {
        let mut b = FunctionBuilder::new("k");
        let p = b.param(Ty::Ptr(Region::Global));
        let cast = b.ptr_to_int(p);
        b.ret();
        let f = b.build();
        assert_eq!(analyze(&f).unwrap_err(), CompileError::PtrToIntForbidden { inst: cast });
    }

    #[test]
    fn inttoptr_is_a_compile_error() {
        let mut b = FunctionBuilder::new("k");
        let x = b.const_i64(0x1234);
        let cast = b.int_to_ptr(x, Region::Global);
        b.ret();
        let f = b.build();
        assert_eq!(analyze(&f).unwrap_err(), CompileError::IntToPtrForbidden { inst: cast });
    }

    #[test]
    fn storing_a_pointer_is_a_compile_error() {
        let mut b = FunctionBuilder::new("k");
        let p = b.param(Ty::Ptr(Region::Global));
        let q = b.param(Ty::Ptr(Region::Global));
        b.store(q, p, 8);
        b.ret();
        let f = b.build();
        assert!(matches!(analyze(&f).unwrap_err(), CompileError::PointerStoredToMemory { .. }));
    }

    #[test]
    fn census_counts_without_failing() {
        let mut b = FunctionBuilder::new("k");
        let p = b.param(Ty::Ptr(Region::Global));
        b.ptr_to_int(p);
        let x = b.const_i64(1);
        b.int_to_ptr(x, Region::Heap);
        b.ret();
        let f = b.build();
        let c = cast_census(&f);
        assert_eq!(c, CastCensus { ptrtoint: 1, inttoptr: 1 });
        assert!(!c.is_clean());
    }

    #[test]
    fn transform_inserts_invalidate_after_free() {
        let mut b = FunctionBuilder::new("k");
        let sz = b.const_i32(64);
        let p = b.malloc(sz);
        b.free(p);
        b.ret();
        let mut f = b.build();
        let n = transform(&mut f);
        assert_eq!(n, 1);
        // The invalidate directly follows the free in the entry block.
        let block = &f.blocks[0];
        let free_pos = block
            .insts
            .iter()
            .position(|&v| matches!(f.insts[v].kind, InstKind::Free { .. }))
            .unwrap();
        let next = block.insts[free_pos + 1];
        assert!(matches!(f.insts[next].kind, InstKind::Invalidate { ptr } if ptr == p));
    }

    #[test]
    fn transform_invalidates_allocas_before_every_ret() {
        let mut b = FunctionBuilder::new("k");
        let buf = b.alloca(96);
        let t = b.tid();
        let zero = b.const_i32(0);
        let c = b.cmp(crate::ir::CmpKind::Eq, t, zero);
        let then_ = b.new_block();
        let else_ = b.new_block();
        b.branch(c, then_, else_);
        b.switch_to(then_);
        b.ret();
        b.switch_to(else_);
        b.ret();
        let mut f = b.build();
        let n = transform(&mut f);
        assert_eq!(n, 2, "one invalidate per return");
        for bid in [then_, else_] {
            let last = *f.blocks[bid].insts.last().unwrap();
            assert!(matches!(f.insts[last].kind, InstKind::Invalidate { ptr } if ptr == buf));
        }
    }
}
