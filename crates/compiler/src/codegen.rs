//! Backend: lowers the kernel IR to the SASS-like ISA, attaching the LMI
//! hint bits computed by the analysis (paper §VI: "information gathered from
//! the LLVM IR analysis is passed as metadata to the backend and utilized
//! for microcode generation").
//!
//! Under [`CompileOptions::lmi`], the backend additionally:
//!
//! * lays out stack and shared buffers power-of-two aligned, largest first,
//!   so every buffer base is aligned to its own rounded size (paper Fig. 7:
//!   the prologue subtracts the rounded frame size from the stack top read
//!   from `c[0x0][0x28]`);
//! * embeds the statically known extent into stack/shared buffer pointers
//!   at generation time;
//! * lowers the pass-inserted [`InstKind::Invalidate`] to an extent-clearing
//!   `AND` on the pointer's high register (§VIII).

use lmi_core::PtrConfig;
use lmi_isa::instr::CmpOp;
use lmi_isa::op::SpecialReg;
use lmi_isa::reg::PredReg;
use lmi_isa::{abi, HintBits, Instruction, MemRef, Opcode, Operand, Predicate, Program, Reg};

use crate::error::CompileError;
use crate::ir::{
    BlockId, CmpKind, FBinOp, Function, IBinOp, InstKind, Region, Terminator, Ty, ValueId,
};
use crate::pass::{analyze, transform, PointerAnalysis};

/// High-word mask that clears the 5 extent bits (`ADDR_MASK >> 32`).
const EXTENT_CLEAR_MASK: i32 = 0x07FF_FFFF;

/// Backend options.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Enable the LMI pass: hint bits, aligned buffers, extent embedding,
    /// temporal instrumentation. When `false` the backend emits the
    /// unprotected baseline binary.
    pub lmi: bool,
    /// Run the generic optimizer (constant folding + DCE) before the LMI
    /// pass, the way a production toolchain orders them.
    pub optimize: bool,
    /// Pointer-format configuration (extent encoding).
    pub ptr: PtrConfig,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions { lmi: true, optimize: false, ptr: PtrConfig::default() }
    }
}

impl CompileOptions {
    /// Baseline (unprotected) compilation.
    pub fn baseline() -> CompileOptions {
        CompileOptions { lmi: false, ..CompileOptions::default() }
    }

    /// Optimized LMI compilation (`-O`-style).
    pub fn optimized() -> CompileOptions {
        CompileOptions { optimize: true, ..CompileOptions::default() }
    }
}

/// A compiled kernel.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The executable program.
    pub program: Program,
    /// Total stack frame bytes reserved per thread.
    pub frame_bytes: u64,
    /// Total static shared bytes per block.
    pub shared_bytes: u64,
    /// Number of instructions carrying the activation hint.
    pub hinted: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// One 32-bit register.
    Single(Reg),
    /// An even-aligned register pair (base named).
    Pair(Reg),
    /// The value is a comparison held in a predicate register.
    Pred(PredReg),
    /// Effect-only instruction.
    None,
}

impl Slot {
    fn reg(self) -> Reg {
        match self {
            Slot::Single(r) | Slot::Pair(r) => r,
            _ => panic!("value has no GPR"),
        }
    }
}

struct RegAlloc {
    next: u8,
}

impl RegAlloc {
    fn new(first_free: u8) -> RegAlloc {
        RegAlloc { next: first_free }
    }

    fn single(&mut self) -> Result<Reg, CompileError> {
        if self.next > 125 {
            return Err(CompileError::OutOfRegisters);
        }
        let r = Reg(self.next);
        self.next += 1;
        Ok(r)
    }

    fn pair(&mut self) -> Result<Reg, CompileError> {
        if self.next % 2 == 1 {
            self.next += 1;
        }
        if self.next > 124 {
            return Err(CompileError::OutOfRegisters);
        }
        let r = Reg(self.next);
        self.next += 2;
        Ok(r)
    }
}

/// One aligned buffer placement: `(value, offset, rounded size, extent)`.
#[derive(Debug, Clone, Copy)]
struct Placement {
    value: ValueId,
    offset: u64,
    extent: u8,
}

fn layout_buffers(items: &[(ValueId, u64)], lmi: bool, ptr: &PtrConfig) -> (Vec<Placement>, u64) {
    // Largest-first placement keeps every 2ⁿ buffer aligned to its own size
    // provided the frame base is aligned to the largest size.
    let mut rounded: Vec<(ValueId, u64, u8)> = items
        .iter()
        .map(|&(v, size)| {
            if lmi {
                let r = ptr.round_up(size).expect("kernel buffers are under the limit");
                (v, r, ptr.extent_for_size(size).expect("checked"))
            } else {
                (v, size.next_multiple_of(16), 0)
            }
        })
        .collect();
    rounded.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let largest = rounded.first().map(|r| r.1).unwrap_or(0);
    let mut offset = 0;
    let mut placements = Vec::new();
    for (value, size, extent) in rounded {
        placements.push(Placement { value, offset, extent });
        offset += size;
    }
    // Round the frame to the largest buffer's alignment so the frame base
    // (stack top − frame) stays aligned to every buffer it holds.
    let total =
        if lmi { offset.next_multiple_of(largest.max(1)) } else { offset.next_multiple_of(16) };
    (placements, total)
}

/// Compiles a function.
///
/// # Errors
///
/// Propagates [`CompileError`] from the analysis (forbidden casts, pointer
/// stores) or register exhaustion.
pub fn compile(func: &Function, options: CompileOptions) -> Result<CompiledKernel, CompileError> {
    let mut func = func.clone();
    debug_assert_eq!(crate::verify::verify(&func), Ok(()), "input IR is malformed");
    if options.optimize {
        crate::opt::optimize(&mut func);
    }
    let analysis = analyze(&func)?;
    if options.lmi {
        transform(&mut func);
    }
    debug_assert_eq!(crate::verify::verify(&func), Ok(()), "passes broke the IR");
    Codegen::new(&func, &analysis, options).run()
}

struct Codegen<'a> {
    func: &'a Function,
    analysis: &'a PointerAnalysis,
    options: CompileOptions,
    regs: RegAlloc,
    slots: Vec<Slot>,
    var_slots: Vec<Slot>,
    stack: Vec<Placement>,
    shared: Vec<Placement>,
    frame_bytes: u64,
    shared_bytes: u64,
    /// Emitted instructions plus, for branches, the IR block they target.
    code: Vec<(Instruction, Option<BlockId>)>,
    block_pcs: Vec<usize>,
    sp: Reg,
    shared_base: Reg,
}

impl<'a> Codegen<'a> {
    fn new(func: &'a Function, analysis: &'a PointerAnalysis, options: CompileOptions) -> Self {
        Codegen {
            func,
            analysis,
            options,
            // R0..R1 scratch, R2:R3 stack pointer, R4:R5 shared base.
            regs: RegAlloc::new(6),
            slots: vec![Slot::None; func.insts.len()],
            var_slots: Vec::new(),
            stack: Vec::new(),
            shared: Vec::new(),
            frame_bytes: 0,
            shared_bytes: 0,
            code: Vec::new(),
            block_pcs: Vec::new(),
            sp: Reg(2),
            shared_base: Reg(4),
        }
    }

    fn emit(&mut self, ins: Instruction) {
        self.code.push((ins, None));
    }

    fn emit_branch(&mut self, ins: Instruction, target: BlockId) {
        self.code.push((ins, Some(target)));
    }

    fn slot_for_ty(&mut self, ty: Ty) -> Result<Slot, CompileError> {
        Ok(match ty {
            Ty::I32 | Ty::F32 => Slot::Single(self.regs.single()?),
            Ty::I64 | Ty::Ptr(_) => Slot::Pair(self.regs.pair()?),
            Ty::Bool => Slot::Pred(PredReg(0)),
        })
    }

    /// Widens a 32-bit value into a fresh pair (sign-extended).
    fn widen(&mut self, src: Reg) -> Result<Reg, CompileError> {
        let pair = self.regs.pair()?;
        self.emit(Instruction::mov(pair, src));
        // hi = (src >>> 31) * -1 : 0 or 0xFFFF_FFFF.
        self.emit(Instruction::int2(Opcode::Shr, Reg(0), src, 31));
        self.emit(Instruction::imad(pair.pair_high(), Reg(0), -1, Reg::RZ));
        Ok(pair)
    }

    fn hints_for(&self, v: ValueId) -> HintBits {
        if !self.options.lmi {
            return HintBits::NONE;
        }
        match self.analysis.pointer_operand(v) {
            Some(sel) => HintBits::check_operand(sel),
            None => HintBits::NONE,
        }
    }

    fn run(mut self) -> Result<CompiledKernel, CompileError> {
        // Buffer layout.
        let stack_items: Vec<(ValueId, u64)> = self
            .func
            .insts
            .iter()
            .enumerate()
            .filter_map(|(v, i)| match i.kind {
                InstKind::Alloca { size } => Some((v, size)),
                _ => None,
            })
            .collect();
        let shared_items: Vec<(ValueId, u64)> = self
            .func
            .insts
            .iter()
            .enumerate()
            .filter_map(|(v, i)| match i.kind {
                InstKind::SharedAlloc { size } => Some((v, size)),
                _ => None,
            })
            .collect();
        let (stack, frame) = layout_buffers(&stack_items, self.options.lmi, &self.options.ptr);
        let (shared, shared_total) =
            layout_buffers(&shared_items, self.options.lmi, &self.options.ptr);
        self.stack = stack;
        self.shared = shared;
        self.frame_bytes = frame;
        self.shared_bytes = shared_total;

        for &ty in &self.func.vars {
            let slot = self.slot_for_ty(ty)?;
            self.var_slots.push(slot);
        }

        // Prologue: stack pointer (Fig. 7) and shared base.
        if !stack_items.is_empty() {
            self.emit(Instruction::ldc(self.sp, abi::LAUNCH_BANK, abi::STACK_TOP_OFFSET, 8));
            self.emit(Instruction::iadd64(self.sp, self.sp, -(self.frame_bytes as i32)));
        }
        if !shared_items.is_empty() {
            self.emit(Instruction::ldc(
                self.shared_base,
                abi::LAUNCH_BANK,
                abi::SHARED_BASE_OFFSET,
                8,
            ));
        }

        // Body, block by block.
        for (b, block) in self.func.blocks.iter().enumerate() {
            self.block_pcs.push(self.code.len());
            let insts = block.insts.clone();
            for v in insts {
                self.lower(v)?;
            }
            match block.term {
                Terminator::Jump(t) => {
                    self.emit_branch(Instruction::bra(0), t);
                }
                Terminator::Branch { cond, then_, else_ } => {
                    let pred = match self.slots[cond] {
                        Slot::Pred(p) => p,
                        _ => {
                            return Err(CompileError::TypeMismatch(
                                "branch condition is not a predicate".into(),
                            ))
                        }
                    };
                    self.emit_branch(Instruction::bra(0).with_pred(Predicate::when(pred)), then_);
                    if else_ != b + 1 {
                        self.emit_branch(Instruction::bra(0), else_);
                    }
                }
                Terminator::Ret => self.emit(Instruction::exit()),
                Terminator::Unterminated => unreachable!("builder guarantees termination"),
            }
        }

        // Patch branch targets and finalize.
        let mut program = Program::new(self.func.name.clone());
        program.local_bytes = self.frame_bytes as u32;
        program.shared_bytes = self.shared_bytes as u32;
        let mut max_reg = 6u8;
        for (mut ins, target) in self.code {
            if let Some(t) = target {
                ins.srcs[0] = Operand::Imm(self.block_pcs[t] as i32);
            }
            for r in ins.dest_regs().into_iter().chain(ins.source_regs()) {
                if !r.is_zero_reg() {
                    max_reg = max_reg.max(r.0);
                }
            }
            program.instructions.push(ins);
        }
        program.regs_per_thread = max_reg + 1;
        let hinted = program.hinted_count();
        Ok(CompiledKernel {
            program,
            frame_bytes: self.frame_bytes,
            shared_bytes: self.shared_bytes,
            hinted,
        })
    }

    fn lower(&mut self, v: ValueId) -> Result<(), CompileError> {
        let inst = self.func.insts[v].clone();
        let slot = match inst.ty {
            Some(ty) => self.slot_for_ty(ty)?,
            None => Slot::None,
        };
        self.slots[v] = slot;

        match inst.kind {
            InstKind::ConstI32(c) => self.emit(Instruction::mov(slot.reg(), c)),
            InstKind::ConstF32(c) => self.emit(Instruction::mov(slot.reg(), c.to_bits() as i32)),
            InstKind::ConstI64(c) => {
                let r = slot.reg();
                self.emit(Instruction::mov(r, c as i32));
                self.emit(Instruction::mov(r.pair_high(), (c >> 32) as i32));
            }
            InstKind::Param(index) => {
                let width = match inst.ty.expect("params produce values") {
                    Ty::I32 | Ty::F32 => 4,
                    _ => 8,
                };
                self.emit(Instruction::ldc(
                    slot.reg(),
                    abi::LAUNCH_BANK,
                    abi::param_offset(index),
                    width,
                ));
            }
            InstKind::Tid => self.emit(Instruction::s2r(slot.reg(), SpecialReg::TidX)),
            InstKind::CtaId => self.emit(Instruction::s2r(slot.reg(), SpecialReg::CtaIdX)),
            InstKind::NTid => self.emit(Instruction::s2r(slot.reg(), SpecialReg::NtidX)),
            InstKind::Alloca { .. } => self.lower_buffer(v, slot, true),
            InstKind::SharedAlloc { .. } => self.lower_buffer(v, slot, false),
            InstKind::Malloc { size } => {
                let size_reg = self.slots[size].reg();
                self.emit(Instruction::malloc(slot.reg(), size_reg));
            }
            InstKind::Free { ptr } => {
                let r = self.slots[ptr].reg();
                self.emit(Instruction::free(r));
            }
            InstKind::Invalidate { ptr } => {
                let r = self.slots[ptr].reg();
                self.emit(Instruction::int2(
                    Opcode::And,
                    r.pair_high(),
                    r.pair_high(),
                    EXTENT_CLEAR_MASK,
                ));
            }
            InstKind::Gep { ptr, index, scale } => {
                let base = self.slots[ptr].reg();
                let idx = self.slots[index].reg();
                let hints = self.hints_for(v);
                if scale.is_power_of_two() {
                    self.emit(
                        Instruction::lea64(slot.reg(), base, idx, scale.trailing_zeros() as u8)
                            .with_hints(hints),
                    );
                } else {
                    self.emit(Instruction::imad(Reg(0), idx, scale as i32, Reg::RZ));
                    let wide = self.widen(Reg(0))?;
                    self.emit(Instruction::iadd64(slot.reg(), base, wide).with_hints(hints));
                }
            }
            InstKind::IBin { op, a, b } => self.lower_ibin(v, slot, op, a, b)?,
            InstKind::FBin { op, a, b } => {
                let (ra, rb) = (self.slots[a].reg(), self.slots[b].reg());
                let opcode = match op {
                    FBinOp::Add => Opcode::Fadd,
                    FBinOp::Mul => Opcode::Fmul,
                };
                self.emit(Instruction::float2(opcode, slot.reg(), ra, rb));
            }
            InstKind::Cmp { kind, a, b } => {
                let cmp = match kind {
                    CmpKind::Eq => CmpOp::Eq,
                    CmpKind::Ne => CmpOp::Ne,
                    CmpKind::Lt => CmpOp::Lt,
                    CmpKind::Ge => CmpOp::Ge,
                };
                let (ra, rb) = (self.slots[a].reg(), self.slots[b].reg());
                self.emit(Instruction::isetp(PredReg(0), ra, cmp, rb));
            }
            InstKind::Load { ptr, width } => {
                let addr = self.slots[ptr].reg();
                let mem = MemRef::new(addr, 0, width);
                let op = self.mem_opcode(ptr, true);
                self.emit(load_for(op, slot.reg(), mem));
            }
            InstKind::Store { ptr, value, width } => {
                let addr = self.slots[ptr].reg();
                let val = self.slots[value].reg();
                let mem = MemRef::new(addr, 0, width);
                let op = self.mem_opcode(ptr, false);
                self.emit(store_for(op, mem, val));
            }
            InstKind::ReadVar(var) => {
                let src = self.var_slots[var];
                match (src, slot) {
                    (Slot::Single(s), Slot::Single(d)) => self.emit(Instruction::mov(d, s)),
                    (Slot::Pair(s), Slot::Pair(d)) => {
                        let marked = self.options.lmi && self.func.vars[var].is_ptr();
                        let mut mv = Instruction::mov64(d, s);
                        if marked {
                            // IMOV of a pointer is verified too (§IV-A2).
                            mv = mv.with_hints(HintBits::check_operand(0));
                        }
                        self.emit(mv);
                    }
                    _ => return Err(CompileError::TypeMismatch("var slot mismatch".into())),
                }
            }
            InstKind::WriteVar { var, value } => {
                let dst = self.var_slots[var];
                let src = self.slots[value];
                match (src, dst) {
                    (Slot::Single(s), Slot::Single(d)) => self.emit(Instruction::mov(d, s)),
                    (Slot::Pair(s), Slot::Pair(d)) => {
                        let marked = self.options.lmi && self.func.vars[var].is_ptr();
                        let mut mv = Instruction::mov64(d, s);
                        if marked {
                            mv = mv.with_hints(HintBits::check_operand(0));
                        }
                        self.emit(mv);
                    }
                    _ => return Err(CompileError::TypeMismatch("var slot mismatch".into())),
                }
            }
            InstKind::PtrToInt { .. } | InstKind::IntToPtr { .. } => {
                unreachable!("analysis rejects forbidden casts before codegen")
            }
        }
        Ok(())
    }

    fn lower_buffer(&mut self, v: ValueId, slot: Slot, is_stack: bool) {
        let placements = if is_stack { &self.stack } else { &self.shared };
        let p = *placements.iter().find(|p| p.value == v).expect("buffer placed during layout");
        let base = if is_stack { self.sp } else { self.shared_base };
        let dst = slot.reg();
        self.emit(Instruction::iadd64(dst, base, p.offset as i32));
        if self.options.lmi {
            // Embed the statically known extent (pointer generation).
            let bits = (p.extent as i32) << 27;
            self.emit(Instruction::int2(Opcode::Or, dst.pair_high(), dst.pair_high(), bits));
        }
    }

    fn lower_ibin(
        &mut self,
        v: ValueId,
        slot: Slot,
        op: IBinOp,
        a: ValueId,
        b: ValueId,
    ) -> Result<(), CompileError> {
        let ptr_side = self.analysis.pointer_operand(v);
        if let Some(side) = ptr_side {
            // Pointer arithmetic on a 64-bit pair.
            let (ptr, other) = if side == 0 { (a, b) } else { (b, a) };
            let ptr_reg = self.slots[ptr].reg();
            let mut other_reg = self.slots[other].reg();
            if matches!(self.slots[other], Slot::Single(_)) {
                if op == IBinOp::Sub {
                    // Negate before widening: ptr - x == ptr + (-x).
                    self.emit(Instruction::imad(Reg(0), other_reg, -1, Reg::RZ));
                    other_reg = Reg(0);
                }
                other_reg = self.widen(other_reg)?;
            }
            let hints = self.hints_for(v);
            let ins = if side == 0 {
                Instruction::iadd64(slot.reg(), ptr_reg, other_reg)
            } else {
                // Pointer in operand slot 1 — exercises S = 1.
                let mut i = Instruction::iadd64(slot.reg(), other_reg, ptr_reg);
                i.srcs[0] = Operand::Reg(other_reg);
                i.srcs[1] = Operand::Reg(ptr_reg);
                i
            };
            self.emit(ins.with_hints(hints));
            return Ok(());
        }
        let (ra, rb) = (self.slots[a].reg(), self.slots[b].reg());
        let d = slot.reg();
        match op {
            IBinOp::Add => self.emit(Instruction::iadd3(d, ra, rb)),
            IBinOp::Sub => self.emit(Instruction::imad(d, rb, -1, ra)),
            IBinOp::Mul => self.emit(Instruction::imad(d, ra, rb, Reg::RZ)),
            IBinOp::And => self.emit(Instruction::int2(Opcode::And, d, ra, rb)),
            IBinOp::Or => self.emit(Instruction::int2(Opcode::Or, d, ra, rb)),
            IBinOp::Xor => self.emit(Instruction::int2(Opcode::Xor, d, ra, rb)),
            IBinOp::Shl => self.emit(Instruction::int2(Opcode::Shl, d, ra, rb)),
            IBinOp::Shr => self.emit(Instruction::int2(Opcode::Shr, d, ra, rb)),
        }
        Ok(())
    }

    fn mem_opcode(&self, ptr: ValueId, is_load: bool) -> Opcode {
        let region = match self.func.insts[ptr].ty {
            Some(Ty::Ptr(r)) => r,
            _ => Region::Global,
        };
        match (region, is_load) {
            (Region::Global | Region::Heap, true) => Opcode::Ldg,
            (Region::Global | Region::Heap, false) => Opcode::Stg,
            (Region::Shared, true) => Opcode::Lds,
            (Region::Shared, false) => Opcode::Sts,
            (Region::Local, true) => Opcode::Ldl,
            (Region::Local, false) => Opcode::Stl,
        }
    }
}

fn load_for(op: Opcode, dst: Reg, mem: MemRef) -> Instruction {
    match op {
        Opcode::Ldg => Instruction::ldg(dst, mem),
        Opcode::Lds => Instruction::lds(dst, mem),
        Opcode::Ldl => Instruction::ldl(dst, mem),
        other => unreachable!("{other} is not a load"),
    }
}

fn store_for(op: Opcode, mem: MemRef, val: Reg) -> Instruction {
    match op {
        Opcode::Stg => Instruction::stg(mem, val),
        Opcode::Sts => Instruction::sts(mem, val),
        Opcode::Stl => Instruction::stl(mem, val),
        other => unreachable!("{other} is not a store"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::FunctionBuilder;

    fn simple_kernel() -> Function {
        // data[tid] += 1 over global memory.
        let mut b = FunctionBuilder::new("incr");
        let data = b.param(Ty::Ptr(Region::Global));
        let tid = b.tid();
        let e = b.gep(data, tid, 4);
        let v = b.load_i32(e);
        let one = b.const_i32(1);
        let v2 = b.ibin(IBinOp::Add, v, one);
        b.store(e, v2, 4);
        b.ret();
        b.build()
    }

    #[test]
    fn lmi_build_marks_exactly_the_pointer_ops() {
        let k = compile(&simple_kernel(), CompileOptions::default()).unwrap();
        assert_eq!(k.hinted, 1, "only the GEP is pointer arithmetic");
        let hinted: Vec<_> = k.program.instructions.iter().filter(|i| i.hints.activate).collect();
        assert_eq!(hinted[0].opcode, Opcode::Lea64);
    }

    #[test]
    fn baseline_build_has_no_hints() {
        let k = compile(&simple_kernel(), CompileOptions::baseline()).unwrap();
        assert_eq!(k.hinted, 0);
    }

    #[test]
    fn stack_frame_is_pow2_aligned_and_fig7_shaped() {
        let mut b = FunctionBuilder::new("dummy2");
        b.alloca(96); // Fig. 7's 0x60-byte buffer
        b.ret();
        let k = compile(&b.build(), CompileOptions::default()).unwrap();
        assert_eq!(k.frame_bytes, 256, "96 B rounds to the 256 B minimum");
        // Prologue: LDC of the stack top, then the subtracting IADD64.
        let p = &k.program.instructions;
        assert_eq!(p[0].opcode, Opcode::Ldc);
        assert_eq!(p[1].opcode, Opcode::Iadd64);
        assert_eq!(p[1].srcs[1], Operand::Imm(-256));
    }

    #[test]
    fn baseline_frame_is_16_byte_granular() {
        let mut b = FunctionBuilder::new("dummy");
        b.alloca(96);
        b.ret();
        let k = compile(&b.build(), CompileOptions::baseline()).unwrap();
        assert_eq!(k.frame_bytes, 96);
    }

    #[test]
    fn multiple_allocas_are_each_self_aligned() {
        let mut b = FunctionBuilder::new("k");
        b.alloca(100); // -> 256
        b.alloca(1000); // -> 1024
        b.alloca(300); // -> 512
        b.ret();
        let k = compile(&b.build(), CompileOptions::default()).unwrap();
        assert_eq!(k.frame_bytes, 2048, "1024 + 512 + 256 rounded to 1024");
        // Offsets are descending-size: 0 (1024), 1024 (512), 1536 (256) —
        // each offset is a multiple of its own buffer size.
        let offs: Vec<i32> = k
            .program
            .instructions
            .iter()
            .filter(|i| i.opcode == Opcode::Iadd64 && i.srcs[1] != Operand::Imm(-2048))
            .filter_map(|i| match i.srcs[1] {
                Operand::Imm(v) if v >= 0 => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(offs, vec![1536, 0, 1024], "per-alloca offsets in program order");
        assert_eq!(offs[1] % 1024, 0);
        assert_eq!(offs[2] % 512, 0);
        assert_eq!(offs[0] % 256, 0);
    }

    #[test]
    fn free_is_followed_by_extent_clearing_and() {
        let mut b = FunctionBuilder::new("k");
        let sz = b.const_i32(64);
        let p = b.malloc(sz);
        b.free(p);
        b.ret();
        let k = compile(&b.build(), CompileOptions::default()).unwrap();
        let p = &k.program.instructions;
        let free_at = p.iter().position(|i| i.opcode == Opcode::Free).unwrap();
        assert_eq!(p[free_at + 1].opcode, Opcode::And);
        assert_eq!(p[free_at + 1].srcs[1], Operand::Imm(EXTENT_CLEAR_MASK));
    }

    #[test]
    fn baseline_emits_no_invalidation() {
        let mut b = FunctionBuilder::new("k");
        let sz = b.const_i32(64);
        let p = b.malloc(sz);
        b.free(p);
        b.ret();
        let k = compile(&b.build(), CompileOptions::baseline()).unwrap();
        assert!(!k.program.instructions.iter().any(|i| i.opcode == Opcode::And));
    }

    #[test]
    fn pointer_in_second_operand_sets_s_bit() {
        let mut b = FunctionBuilder::new("k");
        let p = b.param(Ty::Ptr(Region::Heap));
        let four = b.const_i32(4);
        b.ibin(IBinOp::Add, four, p);
        b.ret();
        let k = compile(&b.build(), CompileOptions::default()).unwrap();
        let marked =
            k.program.instructions.iter().find(|i| i.hints.activate).expect("one marked add");
        assert_eq!(marked.hints.select, 1);
    }

    #[test]
    fn branches_resolve_to_block_pcs() {
        let mut b = FunctionBuilder::new("k");
        let t = b.tid();
        let zero = b.const_i32(0);
        let c = b.cmp(CmpKind::Eq, t, zero);
        let then_ = b.new_block();
        let done = b.new_block();
        b.branch(c, then_, done);
        b.switch_to(then_);
        b.jump(done);
        b.switch_to(done);
        b.ret();
        let k = compile(&b.build(), CompileOptions::default()).unwrap();
        // All BRA targets must be valid instruction indices.
        for ins in &k.program.instructions {
            if ins.opcode == Opcode::Bra {
                match ins.srcs[0] {
                    Operand::Imm(t) => {
                        assert!((t as usize) <= k.program.len(), "target {t} in range")
                    }
                    ref other => panic!("branch target {other:?}"),
                }
            }
        }
        assert_eq!(k.program.instructions.last().unwrap().opcode, Opcode::Exit);
    }

    #[test]
    fn pointer_vars_get_marked_moves() {
        let mut b = FunctionBuilder::new("k");
        let p = b.param(Ty::Ptr(Region::Global));
        let var = b.var(p);
        let q = b.read_var(var);
        let t = b.tid();
        let _ = b.gep(q, t, 4);
        b.ret();
        let k = compile(&b.build(), CompileOptions::default()).unwrap();
        let moves: Vec<_> =
            k.program.instructions.iter().filter(|i| i.opcode == Opcode::Mov64).collect();
        assert!(!moves.is_empty());
        assert!(moves.iter().all(|m| m.hints.activate), "IMOV of pointers is verified");
    }

    #[test]
    fn shared_buffers_get_extents_too() {
        let mut b = FunctionBuilder::new("k");
        let s = b.shared_alloc(1000);
        let t = b.tid();
        let e = b.gep(s, t, 4);
        let z = b.const_i32(0);
        b.store(e, z, 4);
        b.ret();
        let k = compile(&b.build(), CompileOptions::default()).unwrap();
        assert_eq!(k.shared_bytes, 1024);
        assert!(k.program.instructions.iter().any(|i| i.opcode == Opcode::Sts));
        // An OR embeds the shared buffer's extent into the pointer.
        assert!(k.program.instructions.iter().any(|i| i.opcode == Opcode::Or));
    }
}
