//! Randomized property tests on the compiler: the pointer analysis marks
//! exactly the address-deriving instructions (no false hints, no missed
//! hints), the optimizer preserves effects, and codegen is total over
//! well-typed IR. Seeded SplitMix64 keeps failures reproducible.

use lmi_compiler::ir::{Function, FunctionBuilder, IBinOp, InstKind, Region, Ty};
use lmi_compiler::{analyze, compile, optimize, CompileOptions};
use lmi_telemetry::SplitMix64;

/// Random straight-line kernel recipe over two global pointers and a
/// handful of scalars.
#[derive(Debug, Clone)]
enum Step {
    Gep { ptr: u8, idx: u8, scale: u8 },
    PtrAdd { ptr: u8, scalar: u8, swapped: bool },
    Arith { op: u8, a: u8, b: u8 },
    Load { recent_ptr: u8 },
    Store { recent_ptr: u8, value: u8 },
}

fn steps(rng: &mut SplitMix64) -> Vec<Step> {
    let count = rng.range(1, 30) as usize;
    (0..count)
        .map(|_| match rng.below(5) {
            0 => Step::Gep {
                ptr: rng.next_u32() as u8,
                idx: rng.next_u32() as u8,
                scale: *rng.choose(&[1u8, 2, 4, 8, 12]),
            },
            1 => Step::PtrAdd {
                ptr: rng.next_u32() as u8,
                scalar: rng.next_u32() as u8,
                swapped: rng.chance(0.5),
            },
            2 => Step::Arith {
                op: rng.next_u32() as u8,
                a: rng.next_u32() as u8,
                b: rng.next_u32() as u8,
            },
            3 => Step::Load { recent_ptr: rng.next_u32() as u8 },
            _ => Step::Store { recent_ptr: rng.next_u32() as u8, value: rng.next_u32() as u8 },
        })
        .collect()
}

fn build(steps: &[Step]) -> Function {
    let mut b = FunctionBuilder::new("p");
    let p0 = b.param(Ty::Ptr(Region::Global));
    let p1 = b.param(Ty::Ptr(Region::Heap));
    let tid = b.tid();
    let c1 = b.const_i32(3);
    let mut scalars = vec![tid, c1];
    let mut pointers = vec![p0, p1];
    for step in steps {
        match *step {
            Step::Gep { ptr, idx, scale } => {
                let base = pointers[ptr as usize % pointers.len()];
                let index = scalars[idx as usize % scalars.len()];
                pointers.push(b.gep(base, index, scale));
            }
            Step::PtrAdd { ptr, scalar, swapped } => {
                let p = pointers[ptr as usize % pointers.len()];
                let s = scalars[scalar as usize % scalars.len()];
                let q = if swapped { b.ibin(IBinOp::Add, s, p) } else { b.ibin(IBinOp::Add, p, s) };
                pointers.push(q);
            }
            Step::Arith { op, a, b: rhs } => {
                let x = scalars[a as usize % scalars.len()];
                let y = scalars[rhs as usize % scalars.len()];
                let op = match op % 4 {
                    0 => IBinOp::Add,
                    1 => IBinOp::Mul,
                    2 => IBinOp::Xor,
                    _ => IBinOp::And,
                };
                scalars.push(b.ibin(op, x, y));
            }
            Step::Load { recent_ptr } => {
                let p = pointers[recent_ptr as usize % pointers.len()];
                scalars.push(b.load_i32(p));
            }
            Step::Store { recent_ptr, value } => {
                let p = pointers[recent_ptr as usize % pointers.len()];
                let v = scalars[value as usize % scalars.len()];
                b.store(p, v, 4);
            }
        }
    }
    b.ret();
    b.build()
}

/// Independent recomputation of pointer-ness straight off the types.
fn expected_marks(func: &Function) -> Vec<usize> {
    func.insts
        .iter()
        .enumerate()
        .filter(|(_, i)| match i.kind {
            InstKind::Gep { .. } => true,
            InstKind::IBin { a, b, .. } => {
                let is_ptr = |v: usize| func.insts[v].ty.map(|t| t.is_ptr()).unwrap_or(false);
                is_ptr(a) || is_ptr(b)
            }
            _ => false,
        })
        .map(|(v, _)| v)
        .collect()
}

#[test]
fn analysis_marks_exactly_the_pointer_ops() {
    let mut rng = SplitMix64::new(0xAA1);
    for case in 0..200 {
        let func = build(&steps(&mut rng));
        let analysis = analyze(&func).unwrap();
        let expected = expected_marks(&func);
        for (v, inst) in func.insts.iter().enumerate() {
            let should = expected.contains(&v);
            assert_eq!(
                analysis.pointer_operand(v).is_some(),
                should,
                "case {case}: value %{v} ({:?})",
                inst.kind
            );
        }
        assert_eq!(analysis.marked_count(), expected.len(), "case {case}");
    }
}

#[test]
fn s_bit_points_at_the_pointer_side() {
    let mut rng = SplitMix64::new(0x5B17);
    for case in 0..200 {
        let func = build(&steps(&mut rng));
        let analysis = analyze(&func).unwrap();
        for (v, inst) in func.insts.iter().enumerate() {
            if let InstKind::IBin { a, b, .. } = inst.kind {
                if let Some(side) = analysis.pointer_operand(v) {
                    let chosen = if side == 0 { a } else { b };
                    assert!(
                        analysis.is_pointer(chosen),
                        "case {case}: %{v}: S={side} selects a non-pointer"
                    );
                }
            }
        }
    }
}

#[test]
fn optimizer_preserves_side_effects() {
    let mut rng = SplitMix64::new(0x0B7);
    for case in 0..200 {
        let mut func = build(&steps(&mut rng));
        let count_effects = |f: &Function| {
            f.iter_insts()
                .filter(|&(_, _, v)| {
                    matches!(
                        f.insts[v].kind,
                        InstKind::Store { .. } | InstKind::Free { .. } | InstKind::Malloc { .. }
                    )
                })
                .count()
        };
        let before = count_effects(&func);
        optimize(&mut func);
        assert_eq!(count_effects(&func), before, "case {case}");
        // The optimized function still analyzes and compiles.
        assert!(analyze(&func).is_ok(), "case {case}");
    }
}

#[test]
fn compile_is_total_over_wellformed_ir() {
    let mut rng = SplitMix64::new(0xC0141);
    for case in 0..150 {
        let func = build(&steps(&mut rng));
        for opts in
            [CompileOptions::default(), CompileOptions::baseline(), CompileOptions::optimized()]
        {
            match compile(&func, opts) {
                Ok(kernel) => {
                    // Everything the backend emits is microcode-encodable.
                    kernel.program.assemble(lmi_isa::ComputeCapability::Cc80).unwrap();
                }
                Err(lmi_compiler::CompileError::OutOfRegisters) => {
                    // Acceptable for large random kernels (no spilling).
                }
                Err(e) => panic!("case {case}: unexpected error {e}"),
            }
        }
    }
}

#[test]
fn lmi_build_marks_no_fpu_or_mem_instruction() {
    let mut rng = SplitMix64::new(0x1F9);
    for _ in 0..200 {
        let func = build(&steps(&mut rng));
        if let Ok(kernel) = compile(&func, CompileOptions::default()) {
            for ins in &kernel.program.instructions {
                if ins.hints.activate {
                    assert!(ins.opcode.can_carry_hints(), "{} marked", ins.opcode);
                }
            }
        }
    }
}
