//! Property tests on the compiler: the pointer analysis marks exactly the
//! address-deriving instructions (no false hints, no missed hints), the
//! optimizer preserves effects, and codegen is total over well-typed IR.

use lmi_compiler::ir::{Function, FunctionBuilder, IBinOp, InstKind, Region, Ty};
use lmi_compiler::{analyze, compile, optimize, CompileOptions};
use proptest::prelude::*;

/// Random straight-line kernel recipe over two global pointers and a
/// handful of scalars.
#[derive(Debug, Clone)]
enum Step {
    Gep { ptr: u8, idx: u8, scale: u8 },
    PtrAdd { ptr: u8, scalar: u8, swapped: bool },
    Arith { op: u8, a: u8, b: u8 },
    Load { recent_ptr: u8 },
    Store { recent_ptr: u8, value: u8 },
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>(), prop_oneof![Just(1u8), Just(2), Just(4), Just(8), Just(12)])
                .prop_map(|(ptr, idx, scale)| Step::Gep { ptr, idx, scale }),
            (any::<u8>(), any::<u8>(), any::<bool>())
                .prop_map(|(ptr, scalar, swapped)| Step::PtrAdd { ptr, scalar, swapped }),
            (any::<u8>(), any::<u8>(), any::<u8>())
                .prop_map(|(op, a, b)| Step::Arith { op, a, b }),
            any::<u8>().prop_map(|recent_ptr| Step::Load { recent_ptr }),
            (any::<u8>(), any::<u8>())
                .prop_map(|(recent_ptr, value)| Step::Store { recent_ptr, value }),
        ],
        1..30,
    )
}

fn build(steps: &[Step]) -> Function {
    let mut b = FunctionBuilder::new("p");
    let p0 = b.param(Ty::Ptr(Region::Global));
    let p1 = b.param(Ty::Ptr(Region::Heap));
    let tid = b.tid();
    let c1 = b.const_i32(3);
    let mut scalars = vec![tid, c1];
    let mut pointers = vec![p0, p1];
    for step in steps {
        match *step {
            Step::Gep { ptr, idx, scale } => {
                let base = pointers[ptr as usize % pointers.len()];
                let index = scalars[idx as usize % scalars.len()];
                pointers.push(b.gep(base, index, scale));
            }
            Step::PtrAdd { ptr, scalar, swapped } => {
                let p = pointers[ptr as usize % pointers.len()];
                let s = scalars[scalar as usize % scalars.len()];
                let q = if swapped {
                    b.ibin(IBinOp::Add, s, p)
                } else {
                    b.ibin(IBinOp::Add, p, s)
                };
                pointers.push(q);
            }
            Step::Arith { op, a, b: rhs } => {
                let x = scalars[a as usize % scalars.len()];
                let y = scalars[rhs as usize % scalars.len()];
                let op = match op % 4 {
                    0 => IBinOp::Add,
                    1 => IBinOp::Mul,
                    2 => IBinOp::Xor,
                    _ => IBinOp::And,
                };
                scalars.push(b.ibin(op, x, y));
            }
            Step::Load { recent_ptr } => {
                let p = pointers[recent_ptr as usize % pointers.len()];
                scalars.push(b.load_i32(p));
            }
            Step::Store { recent_ptr, value } => {
                let p = pointers[recent_ptr as usize % pointers.len()];
                let v = scalars[value as usize % scalars.len()];
                b.store(p, v, 4);
            }
        }
    }
    b.ret();
    b.build()
}

/// Independent recomputation of pointer-ness straight off the types.
fn expected_marks(func: &Function) -> Vec<usize> {
    func.insts
        .iter()
        .enumerate()
        .filter(|(_, i)| match i.kind {
            InstKind::Gep { .. } => true,
            InstKind::IBin { a, b, .. } => {
                let is_ptr = |v: usize| {
                    func.insts[v].ty.map(|t| t.is_ptr()).unwrap_or(false)
                };
                is_ptr(a) || is_ptr(b)
            }
            _ => false,
        })
        .map(|(v, _)| v)
        .collect()
}

proptest! {
    #[test]
    fn analysis_marks_exactly_the_pointer_ops(steps in arb_steps()) {
        let func = build(&steps);
        let analysis = analyze(&func).unwrap();
        let expected = expected_marks(&func);
        for (v, inst) in func.insts.iter().enumerate() {
            let should = expected.contains(&v);
            prop_assert_eq!(
                analysis.pointer_operand(v).is_some(),
                should,
                "value %{} ({:?})",
                v,
                inst.kind
            );
        }
        prop_assert_eq!(analysis.marked_count(), expected.len());
    }

    #[test]
    fn s_bit_points_at_the_pointer_side(steps in arb_steps()) {
        let func = build(&steps);
        let analysis = analyze(&func).unwrap();
        for (v, inst) in func.insts.iter().enumerate() {
            if let InstKind::IBin { a, b, .. } = inst.kind {
                if let Some(side) = analysis.pointer_operand(v) {
                    let chosen = if side == 0 { a } else { b };
                    prop_assert!(
                        analysis.is_pointer(chosen),
                        "%{v}: S={side} selects a non-pointer"
                    );
                }
            }
        }
    }

    #[test]
    fn optimizer_preserves_side_effects(steps in arb_steps()) {
        let mut func = build(&steps);
        let count_effects = |f: &Function| {
            f.iter_insts()
                .filter(|&(_, _, v)| {
                    matches!(
                        f.insts[v].kind,
                        InstKind::Store { .. } | InstKind::Free { .. } | InstKind::Malloc { .. }
                    )
                })
                .count()
        };
        let before = count_effects(&func);
        optimize(&mut func);
        prop_assert_eq!(count_effects(&func), before);
        // The optimized function still analyzes and compiles.
        prop_assert!(analyze(&func).is_ok());
    }

    #[test]
    fn compile_is_total_over_wellformed_ir(steps in arb_steps()) {
        let func = build(&steps);
        for opts in [CompileOptions::default(), CompileOptions::baseline(), CompileOptions::optimized()] {
            match compile(&func, opts) {
                Ok(kernel) => {
                    // Everything the backend emits is microcode-encodable.
                    kernel.program.assemble(lmi_isa::ComputeCapability::Cc80).unwrap();
                }
                Err(lmi_compiler::CompileError::OutOfRegisters) => {
                    // Acceptable for large random kernels (no spilling).
                }
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
        }
    }

    #[test]
    fn lmi_build_marks_no_fpu_or_mem_instruction(steps in arb_steps()) {
        let func = build(&steps);
        if let Ok(kernel) = compile(&func, CompileOptions::default()) {
            for ins in &kernel.program.instructions {
                if ins.hints.activate {
                    prop_assert!(ins.opcode.can_carry_hints(), "{} marked", ins.opcode);
                }
            }
        }
    }
}
