//! Observability contract tests.
//!
//! * **Golden trace export**: a traced simulation's Chrome trace document
//!   round-trips through the crate's own JSON parser, and its events obey
//!   the trace-event format (monotonically non-decreasing timestamps,
//!   `ph`/`ts`/`pid`/`tid` on every event, `dur` on complete spans).
//! * **Counter/stats consistency**: across random well-typed kernels
//!   (seeded SplitMix64, as in `differential_fuzz`), the scoped counter
//!   registry always agrees with the `SimStats` totals the same run
//!   reports — the two observability paths cannot drift apart.

use lmi::compiler::ir::{Function, FunctionBuilder, IBinOp, Region, Ty};
use lmi::compiler::{compile, CompileOptions};
use lmi::core::{DevicePtr, PtrConfig};
use lmi::mem::layout;
use lmi::sim::{Gpu, GpuConfig, Launch, LmiMechanism};
use lmi::telemetry::{json, Scope, SplitMix64, TelemetrySink};

/// A random-but-safe straight-line kernel: a few strided global accesses,
/// some arithmetic, one published result per thread.
fn random_kernel(rng: &mut SplitMix64) -> Function {
    let mut b = FunctionBuilder::new("obs");
    let data = b.param(Ty::Ptr(Region::Global));
    let tid = b.tid();
    let zero = b.const_i32(0);
    let acc = b.var(zero);
    for _ in 0..rng.range(1, 6) {
        let off_v = b.const_i32(rng.below(900) as i32);
        let idx = b.ibin(IBinOp::Add, tid, off_v);
        let e = b.gep(data, idx, 4);
        if rng.chance(0.5) {
            let v = b.read_var(acc);
            b.store(e, v, 4);
        } else {
            let v = b.load_i32(e);
            let cur = b.read_var(acc);
            let next = b.ibin(IBinOp::Add, cur, v);
            b.write_var(acc, next);
        }
    }
    for _ in 0..rng.below(4) {
        let c = b.const_i32(rng.below(100) as i32 + 1);
        let cur = b.read_var(acc);
        let next = b.ibin(IBinOp::Mul, cur, c);
        b.write_var(acc, next);
    }
    let out = b.gep(data, tid, 4);
    let v = b.read_var(acc);
    b.store(out, v, 4);
    b.ret();
    b.build()
}

fn run_telemetered(kernel: &Function, sink: &mut TelemetrySink) -> lmi::sim::SimStats {
    let cfg = PtrConfig::default();
    let bin = compile(kernel, CompileOptions::default()).unwrap();
    let base_addr = layout::GLOBAL_BASE + 0x300000;
    let ptr = DevicePtr::encode(base_addr, 4096, &cfg).unwrap();
    let launch = Launch::new(bin.program).grid(2).block(64).param(ptr.raw());
    let mut gpu = Gpu::new(GpuConfig::small());
    for i in 0..1024u64 {
        gpu.memory.write(base_addr + i * 4, i.wrapping_mul(2654435761), 4);
    }
    gpu.run_with_telemetry(&launch, &mut LmiMechanism::default_config(), sink)
}

#[test]
fn chrome_trace_export_is_valid_json_with_monotonic_timestamps() {
    let mut rng = SplitMix64::new(0x7ACE);
    let kernel = random_kernel(&mut rng);
    let mut sink = TelemetrySink::with_trace_capacity(1 << 14);
    let stats = run_telemetered(&kernel, &mut sink);
    assert!(!stats.violated());
    assert!(!sink.tracer.is_empty(), "traced run produced no events");

    // The golden property: the serialized document parses with the crate's
    // own parser (compact and pretty forms agree), and the events are
    // well-formed trace events in non-decreasing timestamp order.
    let doc = sink.tracer.chrome_trace();
    let reparsed = json::parse(&doc.to_compact()).expect("compact trace must be valid JSON");
    let reparsed_pretty = json::parse(&doc.to_pretty()).expect("pretty trace must be valid JSON");
    assert_eq!(reparsed.to_compact(), reparsed_pretty.to_compact());

    let events = reparsed.get("traceEvents").expect("traceEvents").items();
    assert_eq!(events.len(), sink.tracer.len());
    let mut last_ts = 0u64;
    for ev in events {
        let ts = ev.get("ts").and_then(|t| t.as_u64()).expect("every event has ts");
        assert!(ts >= last_ts, "timestamps must be non-decreasing ({ts} < {last_ts})");
        last_ts = ts;
        assert!(ev.get("name").and_then(|n| n.as_str()).is_some());
        assert!(ev.get("pid").and_then(|p| p.as_u64()).is_some());
        assert!(ev.get("tid").and_then(|t| t.as_u64()).is_some());
        match ev.get("ph").and_then(|p| p.as_str()).expect("every event has ph") {
            "X" => assert!(ev.get("dur").and_then(|d| d.as_u64()).is_some()),
            "i" => assert_eq!(ev.get("s").and_then(|s| s.as_str()), Some("t")),
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(reparsed.get("droppedEvents").and_then(|d| d.as_u64()).is_some());
}

#[test]
fn registry_counters_agree_with_sim_stats_on_random_kernels() {
    let mut rng = SplitMix64::new(0x0B5E);
    for case in 0..16 {
        let kernel = random_kernel(&mut rng);
        let mut sink = TelemetrySink::counters_only();
        let stats = run_telemetered(&kernel, &mut sink);
        assert!(!stats.violated(), "case {case}");

        let c = &sink.counters;
        assert_eq!(c.sum_sms("issued"), stats.issued, "case {case}: issued");
        assert_eq!(c.sum_sms("transactions"), stats.transactions, "case {case}: transactions");
        assert_eq!(c.get(Scope::Gpu, "cycles"), stats.cycles, "case {case}: cycles");
        assert_eq!(
            c.sum_sms("stall.scoreboard"),
            stats.stalls.scoreboard,
            "case {case}: scoreboard stalls"
        );
        assert_eq!(c.sum_sms("stall.lsu_busy"), stats.stalls.lsu_busy, "case {case}: lsu stalls");
        assert_eq!(
            c.sum_sms("stall.ocu_verdict"),
            stats.stalls.ocu_verdict,
            "case {case}: ocu stalls"
        );
        assert_eq!(
            c.sum_sms("stall.no_ready_warp"),
            stats.stalls.no_ready_warp,
            "case {case}: idle stalls"
        );
        let l1 = stats.l1_total();
        assert_eq!(c.sum_sms("l1.hits"), l1.hits, "case {case}: l1 hits");
        assert_eq!(c.sum_sms("l1.misses"), l1.misses, "case {case}: l1 misses");
        assert_eq!(c.get(Scope::Gpu, "l2.hits"), stats.l2.hits, "case {case}: l2 hits");
        assert_eq!(c.get(Scope::Gpu, "l2.misses"), stats.l2.misses, "case {case}: l2 misses");
        assert_eq!(c.get(Scope::Gpu, "mshr_merges"), stats.mshr_merges, "case {case}: mshr merges");
        assert_eq!(
            c.get(Scope::Gpu, "dram_transactions"),
            stats.dram_transactions,
            "case {case}: dram transactions"
        );
        // Per-warp issue counters partition the per-SM totals.
        let warp_issued: u64 = c
            .iter()
            .filter(|(scope, name, _)| matches!(scope, Scope::Warp { .. }) && *name == "issued")
            .map(|(_, _, v)| v)
            .sum();
        assert_eq!(warp_issued, stats.issued, "case {case}: warp-scope issued");
    }
}
