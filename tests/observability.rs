//! Observability contract tests.
//!
//! * **Golden trace export**: a traced simulation's Chrome trace document
//!   round-trips through the crate's own JSON parser, and its events obey
//!   the trace-event format (monotonically non-decreasing timestamps,
//!   `ph`/`ts`/`pid`/`tid` on every event, `dur` on complete spans).
//! * **Counter/stats consistency**: across random well-typed kernels
//!   (seeded SplitMix64, as in `differential_fuzz`), the scoped counter
//!   registry always agrees with the `SimStats` totals the same run
//!   reports — the two observability paths cannot drift apart.
//! * **Profiler/metrics contract**: histogram merge is associative and
//!   order-independent; a sampled multi-tenant session's metrics snapshot
//!   is bit-identical at 1/2/8 sim threads; sampling off changes no
//!   existing stats; and the Prometheus exposition (what `profile --prom`
//!   prints) round-trips against the JSON snapshot (what `profile --json`
//!   prints), name for name, label for label, value for value.

use lmi::compiler::ir::{Function, FunctionBuilder, IBinOp, Region, Ty};
use lmi::compiler::{compile, CompileOptions};
use lmi::core::{DevicePtr, PtrConfig};
use lmi::mem::layout;
use lmi::runtime::{MetricsSnapshot, Session};
use lmi::sim::{Gpu, GpuConfig, Launch, LmiMechanism};
use lmi::telemetry::export::metric_name;
use lmi::telemetry::{json, parse_prometheus, Histogram, Scope, SplitMix64, TelemetrySink};
use lmi::workloads::{prepare_in, runtime_mixes, TrafficMix};

/// A random-but-safe straight-line kernel: a few strided global accesses,
/// some arithmetic, one published result per thread.
fn random_kernel(rng: &mut SplitMix64) -> Function {
    let mut b = FunctionBuilder::new("obs");
    let data = b.param(Ty::Ptr(Region::Global));
    let tid = b.tid();
    let zero = b.const_i32(0);
    let acc = b.var(zero);
    for _ in 0..rng.range(1, 6) {
        let off_v = b.const_i32(rng.below(900) as i32);
        let idx = b.ibin(IBinOp::Add, tid, off_v);
        let e = b.gep(data, idx, 4);
        if rng.chance(0.5) {
            let v = b.read_var(acc);
            b.store(e, v, 4);
        } else {
            let v = b.load_i32(e);
            let cur = b.read_var(acc);
            let next = b.ibin(IBinOp::Add, cur, v);
            b.write_var(acc, next);
        }
    }
    for _ in 0..rng.below(4) {
        let c = b.const_i32(rng.below(100) as i32 + 1);
        let cur = b.read_var(acc);
        let next = b.ibin(IBinOp::Mul, cur, c);
        b.write_var(acc, next);
    }
    let out = b.gep(data, tid, 4);
    let v = b.read_var(acc);
    b.store(out, v, 4);
    b.ret();
    b.build()
}

fn run_telemetered_on(
    kernel: &Function,
    sink: &mut TelemetrySink,
    gpu_cfg: GpuConfig,
) -> lmi::sim::SimStats {
    let cfg = PtrConfig::default();
    let bin = compile(kernel, CompileOptions::default()).unwrap();
    let base_addr = layout::GLOBAL_BASE + 0x300000;
    let ptr = DevicePtr::encode(base_addr, 4096, &cfg).unwrap();
    let launch = Launch::new(bin.program).grid(2).block(64).param(ptr.raw());
    let mut gpu = Gpu::new(gpu_cfg);
    for i in 0..1024u64 {
        gpu.memory.write(base_addr + i * 4, i.wrapping_mul(2654435761), 4);
    }
    gpu.run_with_telemetry(&launch, &mut LmiMechanism::default_config(), sink)
}

fn run_telemetered(kernel: &Function, sink: &mut TelemetrySink) -> lmi::sim::SimStats {
    run_telemetered_on(kernel, sink, GpuConfig::small())
}

/// Replays a whole traffic mix through a runtime session (the `profile`
/// bin's submission pattern) and returns its metrics snapshot.
fn run_traffic_session(mix: &TrafficMix, threads: usize, period: u64) -> MetricsSnapshot {
    let cfg = GpuConfig::small().with_sim_threads(threads).with_sample_period(period);
    let mut rt = Session::new(cfg);
    let tenants: Vec<usize> =
        mix.tenants.iter().map(|&protected| rt.add_tenant(protected)).collect();
    for (i, traffic) in mix.streams.iter().enumerate() {
        let spec = mix.spec_of(i);
        let tenant = tenants[traffic.tenant];
        let prepared = prepare_in(&spec, &mut rt.tenant_mut(tenant).allocator);
        let stream = rt.create_stream(tenant).expect("tenant exists");
        let buf = prepared.launch.params[0];
        let words: Vec<u64> = (0..traffic.h2d_words as u64).collect();
        rt.memcpy_h2d(stream, buf, &words).expect("stream exists");
        rt.launch(stream, prepared.launch).expect("workload launches are valid");
        rt.memcpy_d2h(stream, buf, traffic.d2h_bytes).expect("stream exists");
    }
    rt.synchronize().expect("mix drains without deadlock");
    rt.metrics_snapshot()
}

fn mix_named(name: &str) -> TrafficMix {
    runtime_mixes().into_iter().find(|m| m.name == name).expect("known mix")
}

#[test]
fn chrome_trace_export_is_valid_json_with_monotonic_timestamps() {
    let mut rng = SplitMix64::new(0x7ACE);
    let kernel = random_kernel(&mut rng);
    let mut sink = TelemetrySink::with_trace_capacity(1 << 14);
    let stats = run_telemetered(&kernel, &mut sink);
    assert!(!stats.violated());
    assert!(!sink.tracer.is_empty(), "traced run produced no events");

    // The golden property: the serialized document parses with the crate's
    // own parser (compact and pretty forms agree), and the events are
    // well-formed trace events in non-decreasing timestamp order.
    let doc = sink.tracer.chrome_trace();
    let reparsed = json::parse(&doc.to_compact()).expect("compact trace must be valid JSON");
    let reparsed_pretty = json::parse(&doc.to_pretty()).expect("pretty trace must be valid JSON");
    assert_eq!(reparsed.to_compact(), reparsed_pretty.to_compact());

    let events = reparsed.get("traceEvents").expect("traceEvents").items();
    assert_eq!(events.len(), sink.tracer.len());
    let mut last_ts = 0u64;
    for ev in events {
        let ts = ev.get("ts").and_then(|t| t.as_u64()).expect("every event has ts");
        assert!(ts >= last_ts, "timestamps must be non-decreasing ({ts} < {last_ts})");
        last_ts = ts;
        assert!(ev.get("name").and_then(|n| n.as_str()).is_some());
        assert!(ev.get("pid").and_then(|p| p.as_u64()).is_some());
        assert!(ev.get("tid").and_then(|t| t.as_u64()).is_some());
        match ev.get("ph").and_then(|p| p.as_str()).expect("every event has ph") {
            "X" => assert!(ev.get("dur").and_then(|d| d.as_u64()).is_some()),
            "i" => assert_eq!(ev.get("s").and_then(|s| s.as_str()), Some("t")),
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(reparsed.get("droppedEvents").and_then(|d| d.as_u64()).is_some());
}

#[test]
fn registry_counters_agree_with_sim_stats_on_random_kernels() {
    let mut rng = SplitMix64::new(0x0B5E);
    for case in 0..16 {
        let kernel = random_kernel(&mut rng);
        let mut sink = TelemetrySink::counters_only();
        let stats = run_telemetered(&kernel, &mut sink);
        assert!(!stats.violated(), "case {case}");

        let c = &sink.counters;
        assert_eq!(c.sum_sms("issued"), stats.issued, "case {case}: issued");
        assert_eq!(c.sum_sms("transactions"), stats.transactions, "case {case}: transactions");
        assert_eq!(c.get(Scope::Gpu, "cycles"), stats.cycles, "case {case}: cycles");
        assert_eq!(
            c.sum_sms("stall.scoreboard"),
            stats.stalls.scoreboard,
            "case {case}: scoreboard stalls"
        );
        assert_eq!(c.sum_sms("stall.lsu_busy"), stats.stalls.lsu_busy, "case {case}: lsu stalls");
        assert_eq!(
            c.sum_sms("stall.ocu_verdict"),
            stats.stalls.ocu_verdict,
            "case {case}: ocu stalls"
        );
        assert_eq!(
            c.sum_sms("stall.no_ready_warp"),
            stats.stalls.no_ready_warp,
            "case {case}: idle stalls"
        );
        let l1 = stats.l1_total();
        assert_eq!(c.sum_sms("l1.hits"), l1.hits, "case {case}: l1 hits");
        assert_eq!(c.sum_sms("l1.misses"), l1.misses, "case {case}: l1 misses");
        assert_eq!(c.get(Scope::Gpu, "l2.hits"), stats.l2.hits, "case {case}: l2 hits");
        assert_eq!(c.get(Scope::Gpu, "l2.misses"), stats.l2.misses, "case {case}: l2 misses");
        assert_eq!(c.get(Scope::Gpu, "mshr_merges"), stats.mshr_merges, "case {case}: mshr merges");
        assert_eq!(
            c.get(Scope::Gpu, "dram_transactions"),
            stats.dram_transactions,
            "case {case}: dram transactions"
        );
        // Per-warp issue counters partition the per-SM totals.
        let warp_issued: u64 = c
            .iter()
            .filter(|(scope, name, _)| matches!(scope, Scope::Warp { .. }) && *name == "issued")
            .map(|(_, _, v)| v)
            .sum();
        assert_eq!(warp_issued, stats.issued, "case {case}: warp-scope issued");
    }
}

#[test]
fn histogram_merge_is_associative_and_order_independent() {
    let mut rng = SplitMix64::new(0x4157_0611);
    for case in 0..8 {
        // Random values spread across ~54 octaves of magnitude (small
        // enough that 400 of them cannot overflow a u64 sum), recorded
        // once into a reference and split across three parts.
        let values: Vec<u64> =
            (0..rng.range(3, 400)).map(|_| rng.next_u64() >> (10 + rng.below(54))).collect();
        let mut reference = Histogram::new();
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        for (i, &v) in values.iter().enumerate() {
            reference.record(v);
            parts[i % 3].record(v);
        }
        let [a, b, c] = &parts;

        // Associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut left = a.clone();
        left.merge(b);
        left.merge(c);
        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "case {case}: merge must be associative");

        // Order-independent, and splitting loses nothing: any permutation
        // equals recording every value into one histogram.
        let mut reversed = c.clone();
        reversed.merge(a);
        reversed.merge(b);
        assert_eq!(left, reversed, "case {case}: merge must be order-independent");
        assert_eq!(left, reference, "case {case}: merged parts must equal the whole");
        assert_eq!(left.count(), values.len() as u64, "case {case}");
        assert_eq!(left.sum(), values.iter().sum::<u64>(), "case {case}");
    }
}

#[test]
fn profiler_output_is_bit_identical_across_sim_threads() {
    // The acceptance bar: with sampling enabled, a multi-tenant traffic
    // session produces bit-identical profiler + histogram output at 1, 2
    // and 8 sim threads. Samples are taken in phase A from SM-local state
    // and absorbed in the apply phase in ascending SM order, so the whole
    // snapshot — not just the profiles — must compare equal.
    let mix = mix_named("quad-stream");
    let reference = run_traffic_session(&mix, 1, 64);
    assert!(!reference.frame.profiles.is_empty(), "sampling on must produce profiles");
    assert!(
        reference.frame.profiles.values().all(|p| p.samples() > 0),
        "every profiled kernel must have samples"
    );
    assert!(!reference.frame.histograms.is_empty(), "latency histograms must be populated");
    for threads in [2, 8] {
        let other = run_traffic_session(&mix, threads, 64);
        assert_eq!(reference, other, "metrics snapshot diverged at {threads} sim threads");
    }
}

#[test]
fn sampling_disabled_changes_no_existing_stats() {
    // Default-off means exactly that: with the period at 0 the run's
    // stats and counters are byte-for-byte what they were before the
    // profiler existed; turning sampling on only ever *adds* a profile.
    let mut rng = SplitMix64::new(0x0FF5);
    for case in 0..4 {
        let kernel = random_kernel(&mut rng);
        let mut sink_off = TelemetrySink::counters_only();
        let mut sink_on = TelemetrySink::counters_only();
        let off = run_telemetered_on(&kernel, &mut sink_off, GpuConfig::small());
        let on =
            run_telemetered_on(&kernel, &mut sink_on, GpuConfig::small().with_sample_period(32));
        assert!(off.profile.is_empty(), "case {case}: period 0 must not sample");
        assert!(!on.profile.is_empty(), "case {case}: period 32 must sample");
        let mut on_sans_profile = on.clone();
        on_sans_profile.profile = Default::default();
        assert_eq!(off, on_sans_profile, "case {case}: sampling altered pre-existing stats");
        assert_eq!(sink_off.counters, sink_on.counters, "case {case}: counters diverged");
    }
}

#[test]
fn prometheus_exposition_round_trips_against_the_json_snapshot() {
    // What `profile --prom` prints is `snap.to_prometheus()` and what
    // `profile --json` wraps is `snap.to_json()`; parsing the former and
    // walking the latter must yield the same numbers, name for name,
    // label for label, value for value.
    let mix = mix_named("dual-tenant");
    let snap = run_traffic_session(&mix, 2, 64);
    assert!(!snap.frame.is_empty());
    let samples = parse_prometheus(&snap.to_prometheus()).expect("exposition must parse");
    let doc = snap.to_json();
    let find = |name: &str, labels: &[(&str, &str)]| -> f64 {
        samples
            .iter()
            .find(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(*v)))
            .unwrap_or_else(|| panic!("sample {name} {labels:?} missing from exposition"))
            .value
    };

    // Every counter appears in both renderings with the same value.
    let counters_json = doc.get("counters").expect("counters");
    for (scope, name, v) in snap.frame.counters.iter() {
        let label = scope.label();
        assert_eq!(find(&metric_name(name), &[("scope", &label)]), v as f64, "{label}/{name}");
        let jv = counters_json.get(&label).and_then(|s| s.get(name)).and_then(|n| n.as_u64());
        assert_eq!(jv, Some(v), "JSON counter {label}/{name}");
    }

    // Every histogram's count and sum agree across all three sources.
    let hists_json = doc.get("histograms").expect("histograms");
    for (scope, name, h) in snap.frame.histograms.iter() {
        let label = scope.label();
        let family = metric_name(name);
        let scoped: [(&str, &str); 1] = [("scope", &label)];
        assert_eq!(find(&format!("{family}_count"), &scoped), h.count() as f64);
        assert_eq!(find(&format!("{family}_sum"), &scoped), h.sum() as f64);
        assert_eq!(
            find(&format!("{family}_bucket"), &[("scope", &label), ("le", "+Inf")]),
            h.count() as f64
        );
        let hj = hists_json.get(&label).and_then(|s| s.get(name)).expect("JSON histogram");
        assert_eq!(hj.get("count").and_then(|n| n.as_u64()), Some(h.count()));
        assert_eq!(hj.get("sum").and_then(|n| n.as_u64()), Some(h.sum()));
    }

    // Profiles: per-kernel sample totals and warp-state counts line up.
    let profiles_json = doc.get("profiles").expect("profiles");
    assert!(!snap.frame.profiles.is_empty());
    for (kernel, p) in &snap.frame.profiles {
        assert_eq!(find("lmi_profile_samples", &[("kernel", kernel)]), p.samples() as f64);
        let pj = profiles_json.get(kernel).expect("JSON profile");
        assert_eq!(pj.get("samples").and_then(|n| n.as_u64()), Some(p.samples()));
        for (state, &n) in lmi::telemetry::WARP_STATE_NAMES.iter().zip(&p.states()) {
            assert_eq!(
                find("lmi_profile_warp_state", &[("kernel", kernel), ("state", state)]),
                n as f64,
                "{kernel}/{state}"
            );
        }
    }

    // Session framing: makespan gauge and the JSON field agree.
    assert_eq!(find("lmi_session_total_cycles", &[]), snap.total_cycles as f64);
    assert_eq!(doc.get("total_cycles").and_then(|n| n.as_u64()), Some(snap.total_cycles));
    assert_eq!(
        doc.get("tenants").expect("tenants").items().len(),
        snap.tenants.len(),
        "one SLO row per tenant"
    );
}
