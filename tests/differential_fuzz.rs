//! Differential fuzzing: random well-typed kernels are compiled twice —
//! unprotected and with the LMI pass — and executed on the simulator.
//!
//! Invariants checked (the paper's correctness claims):
//! * **No false positives**: a memory-safe kernel never faults under LMI
//!   (correct-by-construction, delayed termination).
//! * **Semantic transparency**: both builds produce identical memory
//!   contents — LMI's instrumentation never changes program results.
//!
//! Driven by `lmi-telemetry`'s seeded SplitMix64 so failures reproduce
//! exactly and the workspace builds offline.

use lmi::compiler::ir::{CmpKind, Function, FunctionBuilder, IBinOp, Region, Ty};
use lmi::compiler::{compile, CompileOptions};
use lmi::core::{DevicePtr, PtrConfig};
use lmi::mem::layout;
use lmi::sim::{Gpu, GpuConfig, Launch, LmiMechanism, NullMechanism};
use lmi::telemetry::SplitMix64;

/// A recipe for one random-but-safe kernel.
#[derive(Debug, Clone)]
struct KernelRecipe {
    /// Element strides for global accesses (kept within the buffer).
    global_ops: Vec<(u16, bool)>, // (index offset, is_store)
    /// Same for a stack buffer of 64 elements.
    local_ops: Vec<(u8, bool)>,
    /// Arithmetic mixed in between.
    arith: Vec<u8>,
    /// Loop trip count (0 = straight line).
    trips: u8,
}

fn recipe(rng: &mut SplitMix64) -> KernelRecipe {
    KernelRecipe {
        global_ops: (0..rng.range(1, 8))
            .map(|_| (rng.below(900) as u16, rng.chance(0.5)))
            .collect(),
        local_ops: (0..rng.below(4)).map(|_| (rng.below(64) as u8, rng.chance(0.5))).collect(),
        arith: (0..rng.below(6)).map(|_| rng.next_u32() as u8).collect(),
        trips: rng.below(4) as u8,
    }
}

/// Expands a recipe into a well-typed, memory-safe kernel.
fn build_kernel(recipe: &KernelRecipe) -> Function {
    let mut b = FunctionBuilder::new("fuzz");
    let data = b.param(Ty::Ptr(Region::Global));
    let buf = b.alloca(256); // 64 i32 elements
    let tid = b.tid();
    let zero = b.const_i32(0);
    let acc = b.var(zero);
    let iter = b.var(zero);

    let body = b.new_block();
    let exit = b.new_block();
    b.jump(body);
    b.switch_to(body);

    for &(off, is_store) in &recipe.global_ops {
        // Index stays within the 1024-element buffer: (tid + off) covers at
        // most 255 + 900 < 1024.
        let off_v = b.const_i32(off as i32);
        let idx = b.ibin(IBinOp::Add, tid, off_v);
        let e = b.gep(data, idx, 4);
        if is_store {
            let v = b.read_var(acc);
            b.store(e, v, 4);
        } else {
            let v = b.load_i32(e);
            let cur = b.read_var(acc);
            let next = b.ibin(IBinOp::Add, cur, v);
            b.write_var(acc, next);
        }
    }
    for &(off, is_store) in &recipe.local_ops {
        let off_v = b.const_i32(off as i32 % 64);
        let e = b.gep(buf, off_v, 4);
        if is_store {
            let v = b.read_var(acc);
            b.store(e, v, 4);
        } else {
            let v = b.load_i32(e);
            let cur = b.read_var(acc);
            let next = b.ibin(IBinOp::Xor, cur, v);
            b.write_var(acc, next);
        }
    }
    for &k in &recipe.arith {
        let c = b.const_i32(k as i32 + 1);
        let cur = b.read_var(acc);
        let op = match k % 4 {
            0 => IBinOp::Add,
            1 => IBinOp::Mul,
            2 => IBinOp::Xor,
            _ => IBinOp::Or,
        };
        let next = b.ibin(op, cur, c);
        b.write_var(acc, next);
    }

    let one = b.const_i32(1);
    let iv = b.read_var(iter);
    let next = b.ibin(IBinOp::Add, iv, one);
    b.write_var(iter, next);
    let n = b.const_i32(recipe.trips as i32);
    let c = b.cmp(CmpKind::Lt, next, n);
    b.branch(c, body, exit);
    b.switch_to(exit);

    // Publish the accumulator so both builds' results are observable.
    let out = b.gep(data, tid, 4);
    let v = b.read_var(acc);
    b.store(out, v, 4);
    b.ret();
    b.build()
}

fn snapshot(gpu: &Gpu, base: u64) -> Vec<u64> {
    (0..64u64).map(|i| gpu.memory.read(base + i * 4, 4)).collect()
}

// Quieter-than-default case count: each case runs four simulations.
#[test]
fn lmi_is_transparent_and_false_positive_free() {
    let mut rng = SplitMix64::new(0xD1FF);
    for case in 0..48 {
        let recipe = recipe(&mut rng);
        let cfg = PtrConfig::default();
        let kernel = build_kernel(&recipe);

        // Unprotected build + bare pointer.
        let base_bin = compile(&kernel, CompileOptions::baseline()).unwrap();
        let base_addr = layout::GLOBAL_BASE + 0x100000;
        let launch = Launch::new(base_bin.program).grid(1).block(64).param(base_addr);
        let mut gpu_base = Gpu::new(GpuConfig::security());
        for i in 0..1024u64 {
            gpu_base.memory.write(base_addr + i * 4, i.wrapping_mul(2654435761), 4);
        }
        let stats = gpu_base.run(&launch, &mut NullMechanism);
        assert!(!stats.violated(), "case {case}");

        // LMI build + extent-carrying pointer.
        let lmi_bin = compile(&kernel, CompileOptions::default()).unwrap();
        let ptr = DevicePtr::encode(base_addr, 4096, &cfg).unwrap();
        let launch = Launch::new(lmi_bin.program).grid(1).block(64).param(ptr.raw());
        let mut gpu_lmi = Gpu::new(GpuConfig::security());
        for i in 0..1024u64 {
            gpu_lmi.memory.write(base_addr + i * 4, i.wrapping_mul(2654435761), 4);
        }
        let mut mech = LmiMechanism::default_config();
        let stats = gpu_lmi.run(&launch, &mut mech);

        // No false positives on a memory-safe kernel.
        assert!(
            !stats.violated(),
            "case {case}: false positive: {:?} (recipe {recipe:?})",
            stats.violations.first()
        );
        // Bit-identical results.
        assert_eq!(
            snapshot(&gpu_base, base_addr),
            snapshot(&gpu_lmi, base_addr),
            "case {case}: results diverge (recipe {recipe:?})"
        );
    }
}

/// Injecting a single OOB global access into any safe recipe makes the
/// LMI build fault (soundness under arbitrary surrounding code).
#[test]
fn injected_oob_is_always_caught() {
    let mut rng = SplitMix64::new(0x00B);
    for case in 0..48 {
        let recipe = recipe(&mut rng);
        let escape = rng.range(1024, 50_000) as u32;
        let cfg = PtrConfig::default();
        // Rebuild the kernel with one extra far-OOB store at the end.
        let mut b = FunctionBuilder::new("fuzz_oob");
        let data = b.param(Ty::Ptr(Region::Global));
        let tid = b.tid();
        for &(off, _) in recipe.global_ops.iter().take(3) {
            let off_v = b.const_i32(off as i32);
            let idx = b.ibin(IBinOp::Add, tid, off_v);
            let e = b.gep(data, idx, 4);
            let _ = b.load_i32(e);
        }
        let oob = b.const_i32(escape as i32);
        let e = b.gep(data, oob, 4);
        b.store(e, tid, 4);
        b.ret();
        let kernel = b.build();

        let lmi_bin = compile(&kernel, CompileOptions::default()).unwrap();
        let base_addr = layout::GLOBAL_BASE + 0x200000;
        let ptr = DevicePtr::encode(base_addr, 4096, &cfg).unwrap();
        let launch = Launch::new(lmi_bin.program).grid(1).block(32).param(ptr.raw());
        let mut gpu = Gpu::new(GpuConfig::security());
        let mut mech = LmiMechanism::default_config();
        let stats = gpu.run(&launch, &mut mech);
        assert!(stats.violated(), "case {case}: escape to element {escape} undetected");
    }
}
