//! Differential fuzzing over the `lmi-conformance` generator.
//!
//! Random well-typed kernels spanning the full IR surface — multi-buffer
//! parameters, shared memory, stack buffers, device `malloc`/`free`,
//! divergent branches, nested loops, line-straddling widths — run through
//! the mechanism × engine oracle matrix:
//!
//! * **No false positives**: a safe-by-construction kernel never faults
//!   under any mechanism (correct-by-construction, delayed termination).
//! * **Semantic transparency**: every mechanism produces bit-identical
//!   global-buffer contents on safe kernels.
//! * **Detection by class**: one injected defect per class is caught by
//!   exactly the mechanisms whose design covers it (LMI all of them).
//! * **Engine determinism**: statistics and memory are bit-identical
//!   across `sim_threads` × `mem_banks` configurations.
//!
//! Seeded by `lmi-telemetry`'s SplitMix64 so failures reproduce exactly;
//! case budgets are modest because debug-mode CI runs each case as ten
//! simulations (5 mechanisms × 2 engine points).

use lmi::conformance::{generate, mutate, run_case, DefectClass, OracleConfig, ALL_CLASSES};
use lmi::telemetry::SplitMix64;

/// Seed base distinct from the crate's unit tests, to widen net coverage.
const SEED_BASE: u64 = 0x00D1_FF00;

#[test]
fn safe_kernels_are_transparent_and_false_positive_free() {
    let cfg = OracleConfig::quick();
    let (mut saw_shared, mut saw_heap, mut saw_divergent, mut saw_nested) =
        (false, false, false, false);
    for case in 0..24 {
        let recipe = generate(SEED_BASE + case);
        saw_shared |= recipe.shared_elems > 0;
        saw_heap |= recipe.heap_elems > 0;
        saw_divergent |= recipe.divergent;
        saw_nested |= recipe.inner_trips > 0;
        let report = run_case(&recipe, None, &cfg)
            .unwrap_or_else(|f| panic!("case {case}: {f} (recipe {recipe:?})"));
        for m in &report.mechanisms {
            assert!(!m.detected, "case {case}: false positive under {}", m.mechanism.label());
        }
    }
    // The invariants above are only meaningful if the sample actually
    // exercised the interesting IR surface.
    assert!(saw_shared, "no safe case used shared memory");
    assert!(saw_heap, "no safe case used the device heap");
    assert!(saw_divergent, "no safe case diverged");
    assert!(saw_nested, "no safe case had nested loops");
}

#[test]
fn injected_defects_match_the_coverage_matrix() {
    let cfg = OracleConfig::quick();
    let mut rng = SplitMix64::new(SEED_BASE);
    let mut spatial = (0usize, 0usize);
    for case in 0..8 {
        let safe = generate(SEED_BASE + 100 + case);
        for class in ALL_CLASSES {
            let (mutant, defect) = mutate(&safe, class, &mut rng);
            // `run_case` internally enforces the full expectation matrix
            // (detect/miss per mechanism, violation classification, UAF
            // forensics, engine determinism) and fails loudly otherwise.
            let report = run_case(&mutant, Some(&defect), &cfg)
                .unwrap_or_else(|f| panic!("case {case} {}: {f}", class.label()));
            if class.is_spatial() {
                spatial.0 += 1;
                let lmi_hit = report
                    .mechanisms
                    .iter()
                    .any(|m| m.mechanism == lmi::conformance::MechanismKind::Lmi && m.detected);
                if lmi_hit {
                    spatial.1 += 1;
                }
            }
            if class == DefectClass::IntToPtrEscape {
                assert!(
                    report.compile_rejected,
                    "case {case}: cast mutant must die in the compiler"
                );
            }
        }
    }
    assert_eq!(spatial.0, spatial.1, "LMI must detect every injected spatial defect");
}

/// Divergence-specific regression: a defect placed in each divergent arm
/// (and after reconvergence) is still caught — detection does not depend
/// on which half-warp executes the access.
#[test]
fn divergent_arm_placement_does_not_mask_detection() {
    let mut rng = SplitMix64::new(SEED_BASE + 999);
    let cfg = OracleConfig::quick();
    let mut divergent_hits = 0;
    for case in 0..40 {
        let safe = generate(SEED_BASE + 200 + case);
        if !safe.divergent {
            continue;
        }
        for class in [DefectClass::SpatialNear, DefectClass::SpatialFar] {
            let (mutant, defect) = mutate(&safe, class, &mut rng);
            divergent_hits += 1;
            run_case(&mutant, Some(&defect), &cfg)
                .unwrap_or_else(|f| panic!("case {case} arm {}: {f}", mutant.ops[defect.op].arm));
        }
        if divergent_hits >= 10 {
            break;
        }
    }
    assert!(divergent_hits >= 6, "sample produced too few divergent mutants");
}
