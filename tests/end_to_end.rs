//! Cross-crate integration tests: IR → LMI pass → codegen → simulator →
//! detection, the full pipeline of the paper's Fig. 2 architecture.

use lmi::compiler::ir::{CmpKind, FunctionBuilder, IBinOp, Region, Ty};
use lmi::compiler::{compile, CompileOptions};
use lmi::core::{DevicePtr, PtrConfig, TemporalKind, Violation};
use lmi::mem::layout;
use lmi::sim::{Gpu, GpuConfig, Launch, LmiMechanism, NullMechanism};

fn cfg() -> PtrConfig {
    PtrConfig::default()
}

/// data[tid] = tid * 3 over a compiled kernel; checks functional output.
#[test]
fn compiled_kernel_computes_correctly_under_lmi() {
    let mut b = FunctionBuilder::new("triple");
    let data = b.param(Ty::Ptr(Region::Global));
    let tid = b.tid();
    let ctaid = b.ctaid();
    let ntid = b.ntid();
    let blk = b.ibin(IBinOp::Mul, ctaid, ntid);
    let gid = b.ibin(IBinOp::Add, blk, tid);
    let three = b.const_i32(3);
    let v = b.ibin(IBinOp::Mul, gid, three);
    let e = b.gep(data, gid, 4);
    b.store(e, v, 4);
    b.ret();
    let kernel = compile(&b.build(), CompileOptions::default()).unwrap();

    let buf = DevicePtr::encode(layout::GLOBAL_BASE, 4096, &cfg()).unwrap();
    let launch = Launch::new(kernel.program).grid(2).block(64).param(buf.raw());
    let mut gpu = Gpu::new(GpuConfig::small());
    let mut mech = LmiMechanism::default_config();
    let stats = gpu.run(&launch, &mut mech);
    assert!(!stats.violated(), "benign kernel must not fault");
    for tid in 0..128u64 {
        assert_eq!(gpu.memory.read(buf.addr() + tid * 4, 4), tid * 3, "thread {tid}");
    }
}

/// The same kernel binary behaves identically with and without LMI hardware
/// (hint bits are inert without an OCU).
#[test]
fn lmi_binary_is_backward_compatible() {
    let mut b = FunctionBuilder::new("bc");
    let data = b.param(Ty::Ptr(Region::Global));
    let tid = b.tid();
    let e = b.gep(data, tid, 4);
    b.store(e, tid, 4);
    b.ret();
    let kernel = compile(&b.build(), CompileOptions::default()).unwrap();
    let buf = DevicePtr::encode(layout::GLOBAL_BASE + 0x100000, 4096, &cfg()).unwrap();

    let launch = Launch::new(kernel.program).grid(1).block(64).param(buf.raw());
    let mut with_hw = Gpu::new(GpuConfig::small());
    with_hw.run(&launch, &mut LmiMechanism::default_config());
    let mut without_hw = Gpu::new(GpuConfig::small());
    without_hw.run(&launch, &mut NullMechanism);
    for tid in 0..64u64 {
        assert_eq!(
            with_hw.memory.read(buf.addr() + tid * 4, 4),
            without_hw.memory.read(buf.addr() + tid * 4, 4)
        );
    }
}

/// Heap use-after-free through the full stack: kernel mallocs, frees, and
/// dereferences; the compiler's extent nullification plus the EC catch it.
#[test]
fn compiled_use_after_free_is_caught() {
    let mut b = FunctionBuilder::new("uaf");
    let sz = b.const_i32(256);
    let p = b.malloc(sz);
    let tid = b.tid();
    let e = b.gep(p, tid, 4);
    b.store(e, tid, 4);
    b.free(p);
    // Use after free — through a pointer derived from the freed value.
    let e2 = b.gep(p, tid, 4);
    b.store(e2, tid, 4);
    b.ret();
    let kernel = compile(&b.build(), CompileOptions::default()).unwrap();

    let launch = Launch::new(kernel.program).grid(1).block(1);
    let mut gpu = Gpu::new(GpuConfig::security());
    let mut mech = LmiMechanism::default_config();
    let stats = gpu.run(&launch, &mut mech);
    assert!(stats.violated(), "UAF store must fault");
}

/// Double free through the runtime: the second free is rejected.
#[test]
fn kernel_double_free_is_reported() {
    let mut b = FunctionBuilder::new("df");
    let sz = b.const_i32(128);
    let p = b.malloc(sz);
    b.free(p);
    b.free(p);
    b.ret();
    // Compile WITHOUT the LMI pass so the second free reaches the runtime
    // (the LMI build nullifies the pointer, and FREE of an invalid pointer
    // is itself rejected).
    let kernel = compile(&b.build(), CompileOptions::baseline()).unwrap();
    let launch = Launch::new(kernel.program).grid(1).block(1);
    let mut gpu = Gpu::new(GpuConfig::security());
    let stats = gpu.run(&launch, &mut NullMechanism);
    assert!(stats
        .violations
        .iter()
        .any(|v| v.violation == Violation::Temporal(TemporalKind::DoubleFree)));
}

/// Use-after-scope: a stack buffer's pointer dies at function return.
#[test]
fn compiled_use_after_scope_nullification() {
    // The compiled kernel invalidates its alloca pointers before EXIT; we
    // verify by inspecting the generated code (the AND with the extent
    // mask) and by the Fig. 11 semantics tested in lmi-core. Here: the
    // full binary runs clean under LMI.
    let mut b = FunctionBuilder::new("uas");
    let buf = b.alloca(128);
    let tid = b.tid();
    let e = b.gep(buf, tid, 4);
    b.store(e, tid, 4);
    b.ret();
    let kernel = compile(&b.build(), CompileOptions::default()).unwrap();
    let and_count =
        kernel.program.instructions.iter().filter(|i| i.opcode == lmi::isa::Opcode::And).count();
    assert!(and_count >= 1, "scope-exit nullification emitted");
    let launch = Launch::new(kernel.program).grid(1).block(32);
    let mut gpu = Gpu::new(GpuConfig::security());
    let mut mech = LmiMechanism::default_config();
    let stats = gpu.run(&launch, &mut mech);
    assert!(!stats.violated());
}

/// An out-of-bounds *loop walk* that never dereferences must not fault
/// (delayed termination, paper Fig. 14), end to end on compiled code.
#[test]
fn compiled_loop_walk_has_no_false_positive() {
    let mut b = FunctionBuilder::new("walk");
    let data = b.param(Ty::Ptr(Region::Global));
    let zero = b.const_i32(0);
    let i = b.var(zero);
    let ptr = b.var(data);
    let body = b.new_block();
    let exit = b.new_block();
    b.jump(body);
    b.switch_to(body);
    let pv = b.read_var(ptr);
    let iv = b.read_var(i);
    let v = b.load_i32(pv);
    let _ = v;
    let four = b.const_i32(4);
    let next_ptr = b.ibin(IBinOp::Add, pv, four);
    b.write_var(ptr, next_ptr);
    let one = b.const_i32(1);
    let next = b.ibin(IBinOp::Add, iv, one);
    b.write_var(i, next);
    let n = b.const_i32(64); // walks exactly to one-past-the-end
    let c = b.cmp(CmpKind::Lt, next, n);
    b.branch(c, body, exit);
    b.switch_to(exit);
    b.ret();
    let kernel = compile(&b.build(), CompileOptions::default()).unwrap();

    // A 256-byte buffer: 64 elements exactly fill the 2^n region.
    let buf = DevicePtr::encode(layout::GLOBAL_BASE + 0x200000, 256, &cfg()).unwrap();
    let launch = Launch::new(kernel.program).grid(1).block(1).param(buf.raw());
    let mut gpu = Gpu::new(GpuConfig::security());
    let mut mech = LmiMechanism::default_config();
    let stats = gpu.run(&launch, &mut mech);
    assert!(!stats.violated(), "Fig. 14: no dereference, no fault");
    assert!(mech.poisoned_count >= 1, "the final increment still poisoned");
}
