//! Determinism of the parallel engine (`lmi-sim::engine`).
//!
//! The contract under test: for any workload, any mechanism, and any
//! `sim_threads` setting, a run produces **bit-identical** results — the
//! full `SimStats` record (cycles, per-SM L1 deltas, L2, MSHR, DRAM,
//! violations, forensics), every scoped telemetry counter, the trace-event
//! ring in arrival order, and the functional memory image. Thread count
//! may only change wall-clock time.

use lmi_alloc::AlignmentPolicy;
use lmi_core::PtrConfig;
use lmi_isa::{abi, HintBits, Instruction, MemRef, ProgramBuilder, Reg};
use lmi_mem::layout;
use lmi_runtime::{Runtime, RuntimeReport};
use lmi_sim::{Gpu, GpuConfig, Launch, LmiMechanism, Mechanism, NullMechanism, SimStats};
use lmi_telemetry::{Scope, SplitMix64, TelemetrySink, TraceRecord};
use lmi_workloads::{all_workloads, prepare, prepare_in, runtime_mixes, TrafficMix, WorkloadSpec};

/// Everything observable about one run.
#[derive(Debug, PartialEq)]
struct RunImage {
    stats: SimStats,
    counters: Vec<(Scope, &'static str, u64)>,
    traces: Vec<TraceRecord>,
    memory_probe: Vec<u64>,
}

/// Runs `launch` at `threads` worker threads with full telemetry and
/// snapshots every observable output. `probe` lists addresses whose final
/// functional-memory words are captured.
fn run_at(
    cfg: GpuConfig,
    threads: usize,
    launch: &Launch,
    mechanism: &mut dyn Mechanism,
    probe: &[u64],
) -> RunImage {
    let mut gpu = Gpu::new(cfg.with_sim_threads(threads));
    let mut sink = TelemetrySink::with_trace_capacity(1 << 14);
    let stats = gpu.run_with_telemetry(launch, mechanism, &mut sink);
    RunImage {
        stats,
        counters: sink.counters.iter().collect(),
        traces: sink.tracer.records().cloned().collect(),
        memory_probe: probe.iter().map(|&a| gpu.memory.read(a, 8)).collect(),
    }
}

/// Asserts that `threads` ∈ {2, 8, …} reproduce the serial image exactly.
fn assert_thread_invariant(
    cfg: GpuConfig,
    launch: &Launch,
    mut mech: impl FnMut() -> Box<dyn Mechanism>,
    probe: &[u64],
    label: &str,
) {
    let serial = run_at(cfg, 1, launch, mech().as_mut(), probe);
    assert!(serial.stats.cycles > 0, "{label}: kernel ran");
    for threads in [2, 8] {
        let parallel = run_at(cfg, threads, launch, mech().as_mut(), probe);
        assert_eq!(serial.stats, parallel.stats, "{label}: SimStats diverged at {threads} threads");
        assert_eq!(
            serial.counters, parallel.counters,
            "{label}: telemetry counters diverged at {threads} threads"
        );
        assert_eq!(
            serial.traces, parallel.traces,
            "{label}: trace ring diverged at {threads} threads"
        );
        assert_eq!(
            serial.memory_probe, parallel.memory_probe,
            "{label}: functional memory diverged at {threads} threads"
        );
    }
}

fn workload(name: &str) -> WorkloadSpec {
    all_workloads().into_iter().find(|w| w.name == name).unwrap()
}

#[test]
fn seeded_workloads_are_bit_identical_across_thread_counts() {
    // Three contrasting profiles: compute-heavy, barrier/wavefront, and
    // uncoalesced-memory-heavy.
    for name in ["hotspot", "needle", "bfs"] {
        let spec = workload(name).scaled_down(4);
        let prepared = prepare(&spec, AlignmentPolicy::PowerOfTwo);
        let probe: Vec<u64> = prepared.buffers.iter().map(|&(base, _)| base).collect();
        assert_thread_invariant(
            GpuConfig::small(),
            &prepared.launch,
            || Box::new(LmiMechanism::default_config()),
            &probe,
            name,
        );
    }
}

#[test]
fn null_mechanism_runs_are_bit_identical_across_thread_counts() {
    let spec = workload("backprop").scaled_down(4);
    let prepared = prepare(&spec, AlignmentPolicy::CudaDefault);
    assert_thread_invariant(
        GpuConfig::small(),
        &prepared.launch,
        || Box::new(NullMechanism),
        &[],
        "backprop/null",
    );
}

#[test]
fn violation_forensics_are_bit_identical_across_thread_counts() {
    // Every warp escapes its buffer (marked pointer bump past the extent),
    // so poisons, faults, forensics records and halted warps occur on
    // several SMs at once — the shared-state-heaviest path the engine has.
    let cfg_ptr = PtrConfig::default();
    let buf =
        lmi_core::DevicePtr::encode(layout::GLOBAL_BASE + 0x10000, 256, &cfg_ptr).unwrap().raw();
    let mut b = ProgramBuilder::new("oob-wide");
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::iadd64(Reg(4), Reg(4), 4096).with_hints(HintBits::check_operand(0)));
    b.push(Instruction::mov(Reg(0), 1));
    b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(0)));
    b.push(Instruction::exit());
    let launch = Launch::new(b.build()).grid(8).block(64).param(buf);

    let mut cfg = GpuConfig::small();
    cfg.halt_on_violation = true;
    assert_thread_invariant(
        cfg,
        &launch,
        || Box::new(LmiMechanism::default_config()),
        &[layout::GLOBAL_BASE + 0x10000 + 4096],
        "oob-wide",
    );

    // Sanity that the scenario really exercised the forensic machinery.
    let mut mech = LmiMechanism::default_config();
    let image = run_at(cfg, 8, &launch, &mut mech, &[]);
    assert!(image.stats.violated());
    assert!(!image.stats.forensics.is_empty());
    assert_eq!(image.memory_probe.len(), 0);
}

#[test]
fn kernel_malloc_runs_are_bit_identical_across_thread_counts() {
    // Device-side malloc serializes through the shared heap: allocation
    // order (and thus returned pointers) must not depend on threads.
    let mut b = ProgramBuilder::new("heap");
    b.push(Instruction::mov(Reg(1), 96));
    b.push(Instruction::malloc(Reg(4), Reg(1)));
    b.push(Instruction::stg(MemRef::new(Reg(4), 0, 8), Reg(4)));
    b.push(Instruction::exit());
    let launch = Launch::new(b.build()).grid(6).block(64);
    assert_thread_invariant(
        GpuConfig::small(),
        &launch,
        || Box::new(LmiMechanism::default_config()),
        &[],
        "heap",
    );
}

/// Everything observable about one multi-stream runtime session.
#[derive(Debug, PartialEq)]
struct SessionImage {
    report: RuntimeReport,
    counters: Vec<(Scope, &'static str, u64)>,
    event_times: Vec<Option<u64>>,
    readbacks: Vec<Vec<u64>>,
}

/// Replays a [`TrafficMix`] through the async runtime at `threads` worker
/// threads: per stream an upload → kernel → readback pipeline plus a
/// completion event, then one synchronize.
fn run_mix_at(mix: &TrafficMix, threads: usize) -> SessionImage {
    let mut rt = Runtime::new(GpuConfig::small().with_sim_threads(threads));
    let tenants: Vec<usize> =
        mix.tenants.iter().map(|&protected| rt.add_tenant(protected)).collect();
    let mut events = Vec::new();
    let mut handles = Vec::new();
    for (i, traffic) in mix.streams.iter().enumerate() {
        let spec = mix.spec_of(i);
        let tenant = tenants[traffic.tenant];
        let prepared = prepare_in(&spec, &mut rt.tenant_mut(tenant).allocator);
        let stream = rt.create_stream(tenant).unwrap();
        let buf = prepared.launch.params[0];
        let words: Vec<u64> = (0..traffic.h2d_words as u64).collect();
        rt.memcpy_h2d(stream, buf, &words).unwrap();
        rt.launch(stream, prepared.launch).unwrap();
        handles.push(rt.memcpy_d2h(stream, buf, traffic.d2h_bytes).unwrap());
        let ev = rt.create_event();
        rt.record_event(stream, ev).unwrap();
        events.push(ev);
    }
    rt.synchronize().unwrap();
    SessionImage {
        report: rt.report().clone(),
        counters: rt.counters().iter().collect(),
        event_times: events.iter().map(|&e| rt.event_time(e)).collect(),
        readbacks: handles.iter().map(|&h| rt.copy_result(h).unwrap().to_vec()).collect(),
    }
}

#[test]
fn concurrent_runtime_streams_are_bit_identical_across_thread_counts() {
    // The runtime layer extends the invariant to whole host programs:
    // concurrent multi-tenant streams must produce bit-identical per-kernel
    // SimStats, per-stream/per-tenant counters, event timestamps, and
    // readback payloads at any `sim_threads`.
    for mix in runtime_mixes() {
        let serial = run_mix_at(&mix, 1);
        assert!(serial.report.total_cycles > 0, "{}: session ran", mix.name);
        assert!(
            serial.event_times.iter().all(Option::is_some),
            "{}: all completion events recorded",
            mix.name
        );
        for threads in [2, 8] {
            let parallel = run_mix_at(&mix, threads);
            assert_eq!(
                serial.report, parallel.report,
                "{}: runtime report diverged at {threads} threads",
                mix.name
            );
            assert_eq!(
                serial.counters, parallel.counters,
                "{}: stream/tenant counters diverged at {threads} threads",
                mix.name
            );
            assert_eq!(
                serial.event_times, parallel.event_times,
                "{}: event timestamps diverged at {threads} threads",
                mix.name
            );
            assert_eq!(
                serial.readbacks, parallel.readbacks,
                "{}: D2H payloads diverged at {threads} threads",
                mix.name
            );
        }
    }
}

#[test]
fn random_kernels_property_bit_identical_across_thread_counts() {
    // Property test: randomized variations of the Table V generator specs
    // must stay thread-count invariant. SplitMix64 keeps it reproducible.
    let mut rng = SplitMix64::new(0x1E71_0001);
    let base = all_workloads();
    for case in 0..6u64 {
        let mut spec = base[rng.below(base.len() as u64) as usize].clone();
        spec.iters = rng.range(2, 6) as u32;
        spec.blocks = rng.range(4, 17) as usize;
        spec.threads_per_block = 32 << rng.below(3); // 32/64/128
        spec.compute_per_mem = rng.below(8) as u32;
        spec.ptr_ops_per_mem_x2 = rng.range(1, 5) as u32;
        spec.uncoalesced = rng.below(2) == 1;
        spec.barrier_per_iter = rng.below(2) == 1;
        let prepared = prepare(&spec, AlignmentPolicy::PowerOfTwo);
        let probe: Vec<u64> = prepared.buffers.iter().map(|&(b, _)| b).collect();
        let label = format!("random case {case} ({})", spec.name);
        assert_thread_invariant(
            GpuConfig::small(),
            &prepared.launch,
            || Box::new(LmiMechanism::default_config()),
            &probe,
            &label,
        );
    }
}

#[test]
fn fast_forward_skips_identically_across_thread_counts() {
    // One warp per SM running a chain of dependent MUFUs: after every
    // issue the sole warp stalls on the scoreboard for the full MUFU
    // latency, so every simulated cycle between issues is dead. The
    // engine's `next_ready` fast-forward must skip those cycles — and the
    // serial driver and the parallel leader must skip to the *identical*
    // cycle, which the bit-identity assertion below enforces via
    // `SimStats` (cycles, stalls, samples) and the full telemetry image.
    const CHAIN: u64 = 64;
    let cfg = GpuConfig::small();
    let mufu_latency = u64::from(cfg.fpu_latency) * 2;
    let mut b = ProgramBuilder::new("ff-chain");
    for _ in 0..CHAIN {
        b.push(Instruction::float2(lmi_isa::Opcode::Mufu, Reg(8), Reg(8), Reg(8)));
    }
    b.push(Instruction::exit());
    let launch = Launch::new(b.build()).grid(cfg.num_sms).block(32).phase(7);
    assert_thread_invariant(cfg, &launch, || Box::new(NullMechanism), &[], "fast-forward chain");

    // The skip actually happened: each issue records at most one
    // scoreboard-stall cycle (the probe that discovers the dependency)
    // instead of `latency - 1` of them, yet the clock still advances the
    // full dependency chain.
    let mut gpu = Gpu::new(cfg);
    let mut mech = NullMechanism;
    let stats = gpu.run(&launch, &mut mech);
    assert!(
        stats.cycles >= (CHAIN - 1) * mufu_latency,
        "dependency chain must pay full latency ({} cycles for chain of {CHAIN})",
        stats.cycles,
    );
    assert!(
        stats.stalls.scoreboard <= stats.issued,
        "fast-forward must collapse stall runs to one probe per issue \
         ({} scoreboard stalls vs {} issues)",
        stats.stalls.scoreboard,
        stats.issued,
    );
}
