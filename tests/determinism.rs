//! Determinism of the parallel engine (`lmi-sim::engine`).
//!
//! The contract under test: for any workload, any mechanism, any
//! `sim_threads` setting, and any `mem_banks` setting, a run produces
//! **bit-identical** results — the full `SimStats` record (cycles, per-SM
//! L1 deltas, L2, MSHR, DRAM, violations, forensics), every scoped
//! telemetry counter, the trace-event ring in arrival order, and the
//! functional memory image. Thread count and bank count may only change
//! wall-clock time. The bank-conflict suite additionally pins the
//! per-bank L2/DRAM breakdown (it must re-aggregate to the run totals and
//! be identical across thread counts at a fixed bank count).

use lmi_alloc::AlignmentPolicy;
use lmi_core::PtrConfig;
use lmi_isa::{abi, HintBits, Instruction, MemRef, ProgramBuilder, Reg};
use lmi_mem::layout;
use lmi_runtime::{Runtime, RuntimeReport};
use lmi_sim::{Gpu, GpuConfig, Launch, LmiMechanism, Mechanism, NullMechanism, SimStats};
use lmi_telemetry::{Scope, SplitMix64, TelemetrySink, TraceRecord};
use lmi_workloads::{all_workloads, prepare, prepare_in, runtime_mixes, TrafficMix, WorkloadSpec};

/// Everything observable about one run.
#[derive(Debug, PartialEq)]
struct RunImage {
    stats: SimStats,
    counters: Vec<(Scope, &'static str, u64)>,
    traces: Vec<TraceRecord>,
    memory_probe: Vec<u64>,
}

/// Runs `launch` at `threads` worker threads with full telemetry and
/// snapshots every observable output. `probe` lists addresses whose final
/// functional-memory words are captured.
fn run_at(
    cfg: GpuConfig,
    threads: usize,
    launch: &Launch,
    mechanism: &mut dyn Mechanism,
    probe: &[u64],
) -> RunImage {
    let mut gpu = Gpu::new(cfg.with_sim_threads(threads));
    let mut sink = TelemetrySink::with_trace_capacity(1 << 14);
    let stats = gpu.run_with_telemetry(launch, mechanism, &mut sink);
    RunImage {
        stats,
        counters: sink.counters.iter().collect(),
        traces: sink.tracer.records().cloned().collect(),
        memory_probe: probe.iter().map(|&a| gpu.memory.read(a, 8)).collect(),
    }
}

/// Asserts that `threads` ∈ {2, 8, …} reproduce the serial image exactly.
fn assert_thread_invariant(
    cfg: GpuConfig,
    launch: &Launch,
    mut mech: impl FnMut() -> Box<dyn Mechanism>,
    probe: &[u64],
    label: &str,
) {
    let serial = run_at(cfg, 1, launch, mech().as_mut(), probe);
    assert!(serial.stats.cycles > 0, "{label}: kernel ran");
    for threads in [2, 8] {
        let parallel = run_at(cfg, threads, launch, mech().as_mut(), probe);
        assert_eq!(serial.stats, parallel.stats, "{label}: SimStats diverged at {threads} threads");
        assert_eq!(
            serial.counters, parallel.counters,
            "{label}: telemetry counters diverged at {threads} threads"
        );
        assert_eq!(
            serial.traces, parallel.traces,
            "{label}: trace ring diverged at {threads} threads"
        );
        assert_eq!(
            serial.memory_probe, parallel.memory_probe,
            "{label}: functional memory diverged at {threads} threads"
        );
    }
}

fn workload(name: &str) -> WorkloadSpec {
    all_workloads().into_iter().find(|w| w.name == name).unwrap()
}

/// Per-bank `(l2_hits, l2_misses, dram_transactions)` breakdown.
type BankBreakdown = Vec<(u64, u64, u64)>;

/// Runs `launch` with an explicit bank count, asserts that the per-bank
/// L2/DRAM statistics re-aggregate exactly to the run totals, and returns
/// the observable image plus the breakdown.
fn run_banked_at(
    cfg: GpuConfig,
    threads: usize,
    banks: usize,
    launch: &Launch,
    mechanism: &mut dyn Mechanism,
    probe: &[u64],
) -> (RunImage, BankBreakdown) {
    let mut gpu = Gpu::new(cfg.with_sim_threads(threads).with_mem_banks(banks));
    assert_eq!(gpu.mem_banks(), banks, "geometry must support {banks} banks");
    let mut sink = TelemetrySink::with_trace_capacity(1 << 14);
    let stats = gpu.run_with_telemetry(launch, mechanism, &mut sink);
    let per_bank: BankBreakdown = gpu
        .l2_stats_per_bank()
        .iter()
        .zip(gpu.dram_transactions_per_bank())
        .map(|(l2, dram)| (l2.hits, l2.misses, dram))
        .collect();
    assert_eq!(per_bank.len(), banks);
    let l2_hits: u64 = per_bank.iter().map(|b| b.0).sum();
    let l2_misses: u64 = per_bank.iter().map(|b| b.1).sum();
    let dram: u64 = per_bank.iter().map(|b| b.2).sum();
    // Fresh GPU per run, so the run delta IS the lifetime total.
    assert_eq!((stats.l2.hits, stats.l2.misses), (l2_hits, l2_misses), "L2 re-aggregation");
    assert_eq!(stats.dram_transactions, dram, "DRAM re-aggregation");
    let image = RunImage {
        stats,
        counters: sink.counters.iter().collect(),
        traces: sink.tracer.records().cloned().collect(),
        memory_probe: probe.iter().map(|&a| gpu.memory.read(a, 8)).collect(),
    };
    (image, per_bank)
}

/// Asserts that every cell of `sim_threads` ∈ {1, 2, 8} × `mem_banks` ∈
/// {1, 4} reproduces the serial monolithic image exactly, and that the
/// per-bank breakdown at 4 banks is itself thread-count invariant.
fn assert_bank_invariant(
    cfg: GpuConfig,
    launch: &Launch,
    mut mech: impl FnMut() -> Box<dyn Mechanism>,
    probe: &[u64],
    label: &str,
) {
    let (baseline, _) = run_banked_at(cfg, 1, 1, launch, mech().as_mut(), probe);
    assert!(baseline.stats.cycles > 0, "{label}: kernel ran");
    let mut breakdown4: Option<BankBreakdown> = None;
    for threads in [1, 2, 8] {
        for banks in [1, 4] {
            if (threads, banks) == (1, 1) {
                continue;
            }
            let (image, per_bank) =
                run_banked_at(cfg, threads, banks, launch, mech().as_mut(), probe);
            let cell = format!("{label}: {threads} threads x {banks} banks");
            assert_eq!(baseline.stats, image.stats, "{cell}: SimStats diverged");
            assert_eq!(baseline.counters, image.counters, "{cell}: counters diverged");
            assert_eq!(baseline.traces, image.traces, "{cell}: trace ring diverged");
            assert_eq!(baseline.memory_probe, image.memory_probe, "{cell}: memory diverged");
            if banks == 4 {
                match &breakdown4 {
                    None => breakdown4 = Some(per_bank),
                    Some(expect) => assert_eq!(
                        expect, &per_bank,
                        "{cell}: per-bank breakdown diverged across thread counts"
                    ),
                }
            }
        }
    }
}

#[test]
fn seeded_workloads_are_bit_identical_across_thread_counts() {
    // Three contrasting profiles: compute-heavy, barrier/wavefront, and
    // uncoalesced-memory-heavy.
    for name in ["hotspot", "needle", "bfs"] {
        let spec = workload(name).scaled_down(4);
        let prepared = prepare(&spec, AlignmentPolicy::PowerOfTwo);
        let probe: Vec<u64> = prepared.buffers.iter().map(|&(base, _)| base).collect();
        assert_thread_invariant(
            GpuConfig::small(),
            &prepared.launch,
            || Box::new(LmiMechanism::default_config()),
            &probe,
            name,
        );
    }
}

#[test]
fn null_mechanism_runs_are_bit_identical_across_thread_counts() {
    let spec = workload("backprop").scaled_down(4);
    let prepared = prepare(&spec, AlignmentPolicy::CudaDefault);
    assert_thread_invariant(
        GpuConfig::small(),
        &prepared.launch,
        || Box::new(NullMechanism),
        &[],
        "backprop/null",
    );
}

#[test]
fn violation_forensics_are_bit_identical_across_thread_counts() {
    // Every warp escapes its buffer (marked pointer bump past the extent),
    // so poisons, faults, forensics records and halted warps occur on
    // several SMs at once — the shared-state-heaviest path the engine has.
    let cfg_ptr = PtrConfig::default();
    let buf =
        lmi_core::DevicePtr::encode(layout::GLOBAL_BASE + 0x10000, 256, &cfg_ptr).unwrap().raw();
    let mut b = ProgramBuilder::new("oob-wide");
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::iadd64(Reg(4), Reg(4), 4096).with_hints(HintBits::check_operand(0)));
    b.push(Instruction::mov(Reg(0), 1));
    b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(0)));
    b.push(Instruction::exit());
    let launch = Launch::new(b.build()).grid(8).block(64).param(buf);

    let mut cfg = GpuConfig::small();
    cfg.halt_on_violation = true;
    assert_thread_invariant(
        cfg,
        &launch,
        || Box::new(LmiMechanism::default_config()),
        &[layout::GLOBAL_BASE + 0x10000 + 4096],
        "oob-wide",
    );

    // Sanity that the scenario really exercised the forensic machinery.
    let mut mech = LmiMechanism::default_config();
    let image = run_at(cfg, 8, &launch, &mut mech, &[]);
    assert!(image.stats.violated());
    assert!(!image.stats.forensics.is_empty());
    assert_eq!(image.memory_probe.len(), 0);
}

#[test]
fn kernel_malloc_runs_are_bit_identical_across_thread_counts() {
    // Device-side malloc serializes through the shared heap: allocation
    // order (and thus returned pointers) must not depend on threads.
    let mut b = ProgramBuilder::new("heap");
    b.push(Instruction::mov(Reg(1), 96));
    b.push(Instruction::malloc(Reg(4), Reg(1)));
    b.push(Instruction::stg(MemRef::new(Reg(4), 0, 8), Reg(4)));
    b.push(Instruction::exit());
    let launch = Launch::new(b.build()).grid(6).block(64);
    assert_thread_invariant(
        GpuConfig::small(),
        &launch,
        || Box::new(LmiMechanism::default_config()),
        &[],
        "heap",
    );
}

// ---------------------------------------------------------------------------
// Adversarial bank-conflict suite: workloads built to maximize cross-SM
// traffic into the *same* lines and banks, where any ordering leak between
// bank workers would surface immediately.

#[test]
fn cross_sm_same_line_stores_are_bank_invariant() {
    // Every SM's every warp stores to (and reloads from) the SAME two
    // cache lines: all eight SMs funnel their fills and byte movement into
    // the same banks in the same cycles, and overlapping same-address
    // stores from different SMs must resolve in canonical order for the
    // final memory image to be stable.
    let base = layout::GLOBAL_BASE + 0x80000;
    let mut b = ProgramBuilder::new("line-storm");
    b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 2));
    b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(0)));
    b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(6), 0, 4)));
    b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(8)));
    b.push(Instruction::exit());
    // Same param base for every block: no per-block offset, maximal overlap.
    let launch = Launch::new(b.build()).grid(16).block(64).param(base);
    let probe: Vec<u64> = (0..8).map(|i| base + i * 8).collect();
    assert_bank_invariant(
        GpuConfig::small(),
        &launch,
        || Box::new(NullMechanism),
        &probe,
        "line-storm",
    );
}

#[test]
fn mshr_merges_spanning_sms_are_bank_invariant() {
    // Every SM's warp scatters its 32 lanes over 32 lines that all map to
    // the same L2 set: 192 KiB stride = 1536 lines, which preserves the
    // set index under BOTH geometries (1536 sets monolithic, 384 per bank
    // at 4 banks) and the owning bank. The 24-way set can't hold 32 lines,
    // so each SM's op evicts the earliest lines while their DRAM fills are
    // still in flight — the NEXT SM's access to an evicted line L2-misses
    // and merges with the in-flight fill. The merge bookkeeping lives
    // inside one bank and must not depend on which worker applies it.
    let base = layout::GLOBAL_BASE + 0x90000;
    let mut b = ProgramBuilder::new("merge-storm");
    b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 17));
    b.push(Instruction::lea64(Reg(6), Reg(6), Reg(0), 16));
    b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(6), 0, 4)));
    b.push(Instruction::exit());
    let launch = Launch::new(b.build()).grid(8).block(32).param(base);
    for banks in [1, 4] {
        let (image, _) =
            run_banked_at(GpuConfig::small(), 8, banks, &launch, &mut NullMechanism, &[]);
        assert!(
            image.stats.mshr_merges > 0,
            "the scenario really exercised the MSHRs at {banks} banks"
        );
    }
    assert_bank_invariant(
        GpuConfig::small(),
        &launch,
        || Box::new(NullMechanism),
        &[base],
        "merge-storm",
    );
}

#[test]
fn line_straddling_accesses_are_bank_invariant() {
    // Each thread stores and reloads 8 bytes at line_offset 124 of its own
    // line: every access straddles a 128-byte line boundary, so with 4
    // banks the two halves of one access live in *different* banks and the
    // load's value is OR-assembled from two bank workers.
    let base = layout::GLOBAL_BASE + 0xA0000;
    let mut b = ProgramBuilder::new("straddle");
    b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 7));
    b.push(Instruction::stg(MemRef::new(Reg(6), 124, 8), Reg(6)));
    b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(6), 124, 8)));
    b.push(Instruction::stg(MemRef::new(Reg(6), 0, 8), Reg(8)));
    b.push(Instruction::exit());
    let launch = Launch::new(b.build()).grid(8).block(32).param(base);
    let probe: Vec<u64> = (0..32).map(|t| base + t * 128 + 124).collect();
    assert_bank_invariant(
        GpuConfig::small(),
        &launch,
        || Box::new(NullMechanism),
        &probe,
        "straddle",
    );
}

#[test]
fn violation_storms_are_bank_invariant() {
    // Every warp faults under halt-on-violation: the cancelled ops'
    // bank-queue entries must be skipped identically everywhere, and the
    // poison/fault forensics stay leader-serial and canonical.
    let cfg_ptr = PtrConfig::default();
    let buf =
        lmi_core::DevicePtr::encode(layout::GLOBAL_BASE + 0xB0000, 256, &cfg_ptr).unwrap().raw();
    let mut b = ProgramBuilder::new("violation-storm");
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::iadd64(Reg(4), Reg(4), 4096).with_hints(HintBits::check_operand(0)));
    b.push(Instruction::mov(Reg(0), 1));
    b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(0)));
    b.push(Instruction::exit());
    let launch = Launch::new(b.build()).grid(16).block(64).param(buf);
    let mut cfg = GpuConfig::small();
    cfg.halt_on_violation = true;
    assert_bank_invariant(
        cfg,
        &launch,
        || Box::new(LmiMechanism::default_config()),
        &[layout::GLOBAL_BASE + 0xB0000 + 4096],
        "violation-storm",
    );
    // The cancelled stores must not have landed at any bank count.
    let (image, _) = run_banked_at(
        cfg,
        8,
        4,
        &launch,
        &mut LmiMechanism::default_config(),
        &[layout::GLOBAL_BASE + 0xB0000 + 4096],
    );
    assert!(image.stats.violated());
    assert_eq!(image.memory_probe[0], 0, "halted OOB store leaked to memory");
}

#[test]
fn metadata_fetch_storms_are_bank_invariant() {
    // GPUShield with a zero-entry RCache fetches an in-memory bounds entry
    // on EVERY global access: the metadata pass carries real traffic each
    // cycle, and the data fills are gated on metadata completions published
    // by (possibly) other banks' workers.
    let base = layout::GLOBAL_BASE + 0xC0000;
    let mut b = ProgramBuilder::new("meta-storm");
    b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 2));
    b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(0)));
    b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(6), 0, 4)));
    b.push(Instruction::exit());
    let launch = Launch::new(b.build()).grid(8).block(64).param(base);
    let mech = || {
        let mut gs = lmi_baselines::GpuShield::with_rcache_entries(0);
        gs.register_buffer(base, 64 * 4);
        Box::new(gs) as Box<dyn Mechanism>
    };
    assert_bank_invariant(GpuConfig::small(), &launch, mech, &[base], "meta-storm");
}

/// Everything observable about one multi-stream runtime session.
#[derive(Debug, PartialEq)]
struct SessionImage {
    report: RuntimeReport,
    counters: Vec<(Scope, &'static str, u64)>,
    event_times: Vec<Option<u64>>,
    readbacks: Vec<Vec<u64>>,
}

/// Replays a [`TrafficMix`] through the async runtime at `threads` worker
/// threads: per stream an upload → kernel → readback pipeline plus a
/// completion event, then one synchronize.
fn run_mix_at(mix: &TrafficMix, threads: usize, banks: usize) -> SessionImage {
    let mut rt = Runtime::new(GpuConfig::small().with_sim_threads(threads).with_mem_banks(banks));
    let tenants: Vec<usize> =
        mix.tenants.iter().map(|&protected| rt.add_tenant(protected)).collect();
    let mut events = Vec::new();
    let mut handles = Vec::new();
    for (i, traffic) in mix.streams.iter().enumerate() {
        let spec = mix.spec_of(i);
        let tenant = tenants[traffic.tenant];
        let prepared = prepare_in(&spec, &mut rt.tenant_mut(tenant).allocator);
        let stream = rt.create_stream(tenant).unwrap();
        let buf = prepared.launch.params[0];
        let words: Vec<u64> = (0..traffic.h2d_words as u64).collect();
        rt.memcpy_h2d(stream, buf, &words).unwrap();
        rt.launch(stream, prepared.launch).unwrap();
        handles.push(rt.memcpy_d2h(stream, buf, traffic.d2h_bytes).unwrap());
        let ev = rt.create_event();
        rt.record_event(stream, ev).unwrap();
        events.push(ev);
    }
    rt.synchronize().unwrap();
    SessionImage {
        report: rt.report().clone(),
        counters: rt.counters().iter().collect(),
        event_times: events.iter().map(|&e| rt.event_time(e)).collect(),
        readbacks: handles.iter().map(|&h| rt.copy_result(h).unwrap().to_vec()).collect(),
    }
}

#[test]
fn concurrent_runtime_streams_are_bit_identical_across_thread_counts() {
    // The runtime layer extends the invariant to whole host programs:
    // concurrent multi-tenant streams must produce bit-identical per-kernel
    // SimStats, per-stream/per-tenant counters, event timestamps, and
    // readback payloads at any `sim_threads` and any `mem_banks` — the
    // tenants' 4 GiB global slices sit at wildly different addresses, but
    // line-granular interleaving spreads every slice across every bank.
    for mix in runtime_mixes() {
        let serial = run_mix_at(&mix, 1, 1);
        assert!(serial.report.total_cycles > 0, "{}: session ran", mix.name);
        assert!(
            serial.event_times.iter().all(Option::is_some),
            "{}: all completion events recorded",
            mix.name
        );
        for (threads, banks) in [(2, 1), (8, 1), (2, 4), (8, 4)] {
            let parallel = run_mix_at(&mix, threads, banks);
            let cell = format!("{}: {threads} threads x {banks} banks", mix.name);
            assert_eq!(serial.report, parallel.report, "{cell}: runtime report diverged");
            assert_eq!(
                serial.counters, parallel.counters,
                "{cell}: stream/tenant counters diverged"
            );
            assert_eq!(
                serial.event_times, parallel.event_times,
                "{cell}: event timestamps diverged"
            );
            assert_eq!(serial.readbacks, parallel.readbacks, "{cell}: D2H payloads diverged");
        }
    }
}

#[test]
fn random_kernels_property_bit_identical_across_thread_counts() {
    // Property test: randomized variations of the Table V generator specs
    // must stay thread-count invariant. SplitMix64 keeps it reproducible.
    let mut rng = SplitMix64::new(0x1E71_0001);
    let base = all_workloads();
    for case in 0..6u64 {
        let mut spec = base[rng.below(base.len() as u64) as usize].clone();
        spec.iters = rng.range(2, 6) as u32;
        spec.blocks = rng.range(4, 17) as usize;
        spec.threads_per_block = 32 << rng.below(3); // 32/64/128
        spec.compute_per_mem = rng.below(8) as u32;
        spec.ptr_ops_per_mem_x2 = rng.range(1, 5) as u32;
        spec.uncoalesced = rng.below(2) == 1;
        spec.barrier_per_iter = rng.below(2) == 1;
        let prepared = prepare(&spec, AlignmentPolicy::PowerOfTwo);
        let probe: Vec<u64> = prepared.buffers.iter().map(|&(b, _)| b).collect();
        let label = format!("random case {case} ({})", spec.name);
        assert_thread_invariant(
            GpuConfig::small(),
            &prepared.launch,
            || Box::new(LmiMechanism::default_config()),
            &probe,
            &label,
        );
    }
}

#[test]
fn fast_forward_skips_identically_across_thread_counts() {
    // One warp per SM running a chain of dependent MUFUs: after every
    // issue the sole warp stalls on the scoreboard for the full MUFU
    // latency, so every simulated cycle between issues is dead. The
    // engine's `next_ready` fast-forward must skip those cycles — and the
    // serial driver and the parallel leader must skip to the *identical*
    // cycle, which the bit-identity assertion below enforces via
    // `SimStats` (cycles, stalls, samples) and the full telemetry image.
    const CHAIN: u64 = 64;
    let cfg = GpuConfig::small();
    let mufu_latency = u64::from(cfg.fpu_latency) * 2;
    let mut b = ProgramBuilder::new("ff-chain");
    for _ in 0..CHAIN {
        b.push(Instruction::float2(lmi_isa::Opcode::Mufu, Reg(8), Reg(8), Reg(8)));
    }
    b.push(Instruction::exit());
    let launch = Launch::new(b.build()).grid(cfg.num_sms).block(32).phase(7);
    assert_thread_invariant(cfg, &launch, || Box::new(NullMechanism), &[], "fast-forward chain");

    // The skip actually happened: each issue records at most one
    // scoreboard-stall cycle (the probe that discovers the dependency)
    // instead of `latency - 1` of them, yet the clock still advances the
    // full dependency chain.
    let mut gpu = Gpu::new(cfg);
    let mut mech = NullMechanism;
    let stats = gpu.run(&launch, &mut mech);
    assert!(
        stats.cycles >= (CHAIN - 1) * mufu_latency,
        "dependency chain must pay full latency ({} cycles for chain of {CHAIN})",
        stats.cycles,
    );
    assert!(
        stats.stalls.scoreboard <= stats.issued,
        "fast-forward must collapse stall runs to one probe per issue \
         ({} scoreboard stalls vs {} issues)",
        stats.stalls.scoreboard,
        stats.issued,
    );
}
