//! Conformance pins: §VIII temporal safety and the automatic shrinker.
//!
//! * The use-after-free fuzz class asserts extent nullification end to
//!   end: the `free` poisons the dangling pointer (the EC faults the next
//!   dereference) and the forensics log attributes the fault to the FREE
//!   site with a positive poison-to-fault latency.
//! * The double-free class is validated by the device-runtime allocator
//!   and classified as `Temporal(DoubleFree)`.
//! * The shrinker regression pins a seed whose known-failing mutant must
//!   minimize to a bounded reproducer, bit-identically across engine
//!   thread counts.

use lmi::conformance::{
    build, generate, lmi_run, mutate, run_case, shrink, DefectClass, EnginePoint, OracleConfig,
};
use lmi::core::{TemporalKind, Violation};
use lmi::telemetry::SplitMix64;

const POINT: EnginePoint = EnginePoint { sim_threads: 1, mem_banks: 1 };

#[test]
fn uaf_nullification_poisons_the_dangling_pointer() {
    let mut rng = SplitMix64::new(0xFEED);
    for seed in 0..12 {
        let (mutant, defect) = mutate(&generate(seed), DefectClass::Uaf, &mut rng);
        let func = build(&mutant, Some(&defect));
        let stats = lmi_run(&func, &mutant.globals, POINT).expect("uaf mutant compiles");
        assert!(stats.violated(), "seed {seed}: dangling access undetected");
        // The nullified extent makes the dangling pointer invalid — the
        // fault is a dead-pointer dereference, never a spatial escape.
        let v = &stats.violations[0].violation;
        assert!(
            matches!(v, Violation::InvalidPointer { .. } | Violation::Temporal(_)),
            "seed {seed}: UAF classified as {v:?}"
        );
        // §VIII forensics: poison attributed to the FREE site, fault
        // strictly later.
        let rec = stats
            .forensics
            .first()
            .unwrap_or_else(|| panic!("seed {seed}: no forensic record for the UAF fault"));
        assert_eq!(rec.poison.op, "FREE", "seed {seed}: poison not attributed to the free");
        assert!(rec.latency_cycles() > 0, "seed {seed}: poison-to-fault latency must be positive");
    }
}

#[test]
fn double_free_is_validated_by_the_allocator() {
    let mut rng = SplitMix64::new(0xF00D);
    for seed in 0..12 {
        let (mutant, defect) = mutate(&generate(seed), DefectClass::DoubleFree, &mut rng);
        let func = build(&mutant, Some(&defect));
        let stats = lmi_run(&func, &mutant.globals, POINT).expect("double-free mutant compiles");
        assert!(stats.violated(), "seed {seed}: double free undetected");
        assert!(
            stats
                .violations
                .iter()
                .any(|e| e.violation == Violation::Temporal(TemporalKind::DoubleFree)),
            "seed {seed}: double free classified as {:?}",
            stats.violations[0].violation
        );
    }
}

/// Temporal classes through the full differential matrix: every mechanism
/// flags the allocator-validated double free, while only LMI's extent
/// nullification catches the dangling dereference.
#[test]
fn temporal_classes_hold_across_the_matrix() {
    let cfg = OracleConfig::quick();
    let mut rng = SplitMix64::new(0xBEEF);
    for seed in 40..46 {
        let safe = generate(seed);
        for class in [DefectClass::Uaf, DefectClass::DoubleFree] {
            let (mutant, defect) = mutate(&safe, class, &mut rng);
            run_case(&mutant, Some(&defect), &cfg)
                .unwrap_or_else(|f| panic!("seed {seed} {}: {f}", class.label()));
        }
    }
}

/// Pinned-seed shrinker regression: the known-failing spatial mutant of
/// seed 7 reduces to a minimal reproducer — bounded op count, identical
/// output at every engine thread count, and a paste-ready test.
#[test]
fn shrinker_is_bounded_and_engine_deterministic() {
    const SEED: u64 = 7;
    const MAX_IR_OPS: usize = 12;
    let mut rng = SplitMix64::new(0x5EED);
    let (mutant, defect) = mutate(&generate(SEED), DefectClass::SpatialNear, &mut rng);

    let mut reps = [1usize, 2, 8].map(|sim_threads| {
        let point = EnginePoint { sim_threads, mem_banks: 1 };
        shrink(&mutant, &defect, point)
    });
    let reference = reps[0].clone();
    assert!(
        reference.op_count <= MAX_IR_OPS,
        "seed {SEED} shrank to {} IR ops (> {MAX_IR_OPS})",
        reference.op_count
    );
    for rep in &mut reps[1..] {
        assert_eq!(rep.recipe, reference.recipe, "shrunk recipe differs across sim_threads");
        assert_eq!(rep.defect, reference.defect, "remapped defect differs across sim_threads");
        assert_eq!(rep.function, reference.function, "shrunk IR differs across sim_threads");
        assert_eq!(rep.op_count, reference.op_count);
        assert_eq!(rep.to_test_source(), reference.to_test_source());
    }

    // The rendered reproducer carries the pinned seed and class.
    let src = reference.to_test_source();
    assert!(src.contains("seed 7"), "reproducer must name its seed");
    assert!(src.contains("spatial-near"), "reproducer must name its class");
    assert!(src.contains("#[test]"), "reproducer must be a paste-ready test");

    // And the minimized case still fails for the original reason.
    let stats = lmi_run(&reference.function, &reference.recipe.globals, POINT)
        .expect("shrunk reproducer compiles");
    assert!(stats.violated(), "shrunk reproducer lost the failure");
}
