//! Allocation audit of the steady-state cycle loop.
//!
//! The hot-path contract (DESIGN.md, *Hot path & allocation discipline*):
//! after warm-up, the cycle loop performs **zero heap allocations per
//! cycle**. Every allocation belongs to launch-time setup — program
//! lowering into a [`lmi_isa::DecodedStream`], warp tables, event-pool
//! warm-up — never to steady state.
//!
//! The audit installs a counting `#[global_allocator]` and runs the same
//! seeded multi-SM workload at `N` and `2N` loop iterations on fresh GPUs.
//! Doubling the simulated cycle count must leave the total allocation
//! count **exactly equal**: any per-cycle allocation would show up as a
//! difference proportional to the extra cycles. A warm-up run first
//! absorbs one-time lazy process state so it cannot skew the comparison.
//!
//! This file deliberately holds a single `#[test]` — the allocator is
//! process-global, and a lone test keeps the measured window free of
//! harness concurrency.

use lmi_bench::alloc_audit::CountingAlloc;
use lmi_isa::instr::CmpOp;
use lmi_isa::{HintBits, Instruction, MemRef, PredReg, ProgramBuilder, Reg};
use lmi_sim::{Gpu, GpuConfig, Launch, LmiMechanism, SimStats};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// A heap-quiet looping kernel that exercises every pooled payload path:
/// kernel malloc (heap pairs, outside the loop), loads and stores through
/// an extent-carrying pointer (lane records + coalesced lines), a marked
/// pointer add checked by the OCU (triples), and predicate/branch control
/// flow — `iters` round trips per lane.
fn audit_launch(iters: i32) -> Launch {
    let mut b = ProgramBuilder::new("alloc-audit");
    b.push(Instruction::s2r(Reg(0), lmi_isa::op::SpecialReg::TidX));
    b.push(Instruction::mov(Reg(1), 256));
    b.push(Instruction::malloc(Reg(4), Reg(1)));
    b.push(Instruction::mov(Reg(2), 0));
    let top = b.label();
    b.push(Instruction::iadd3(Reg(2), Reg(2), 1));
    b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(2)));
    b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(4), 0, 4)));
    // Marked pointer arithmetic: the OCU checks operand 0 each trip.
    b.push(Instruction::iadd64(Reg(4), Reg(4), 0).with_hints(HintBits::check_operand(0)));
    b.push(Instruction::isetp(PredReg(0), Reg(2), CmpOp::Lt, iters));
    b.branch_if(top, PredReg(0), false);
    b.push(Instruction::exit());
    // Every SM of `GpuConfig::small()` holds two blocks: multi-SM, with
    // intra-SM scheduler contention.
    Launch::new(b.build()).grid(16).block(64)
}

/// Runs the audit kernel and returns `(heap allocations, stats)`.
fn measured_run(threads: usize, banks: usize, iters: i32) -> (u64, SimStats) {
    let mut gpu = Gpu::new(GpuConfig::small().with_sim_threads(threads).with_mem_banks(banks));
    let mut mech = LmiMechanism::default_config();
    let launch = audit_launch(iters);
    let before = CountingAlloc::allocations();
    let stats = gpu.run(&launch, &mut mech);
    (CountingAlloc::allocations() - before, stats)
}

#[test]
fn cycle_loop_is_allocation_free_after_warmup() {
    const N: i32 = 400;
    // The banked configurations exercise the per-SM per-bank queues and
    // the lane atoms: their capacity must be pool-retained like every
    // other per-cycle buffer, so sharding adds launch-time allocations
    // only, never per-cycle ones.
    for (threads, banks) in [(1, 1), (2, 1), (1, 4), (2, 4)] {
        // Warm-up: absorbs lazy process-wide state (thread stacks, TLS,
        // allocator internals) so the measured pair sees identical setup.
        let _ = measured_run(threads, banks, N);

        let (allocs_n, stats_n) = measured_run(threads, banks, N);
        let (allocs_2n, stats_2n) = measured_run(threads, banks, 2 * N);

        assert!(!stats_n.violated() && !stats_2n.violated(), "audit kernel is violation-free");
        assert!(
            stats_2n.cycles > stats_n.cycles + u64::try_from(N).unwrap(),
            "doubling iterations must add cycles ({} vs {})",
            stats_n.cycles,
            stats_2n.cycles,
        );
        assert_eq!(
            allocs_n,
            allocs_2n,
            "heap allocations grew with cycle count at sim_threads={threads} \
             mem_banks={banks}: {allocs_n} for {N} iterations vs {allocs_2n} for {} — \
             the cycle loop allocated in steady state",
            2 * N,
        );
    }
}
