//! Integration tests for the `lmi-runtime` stream/event layer — the
//! acceptance criteria of the runtime subsystem:
//!
//! * kernels from different streams run **concurrently** on disjoint SM
//!   partitions, in measurably fewer total simulated cycles than the same
//!   submissions chained back-to-back;
//! * per-kernel `SimStats` are bit-identical at `sim_threads` ∈ {1, 2, 8};
//! * a cross-tenant OOB attempt is caught by the victim-independent LMI
//!   check and attributed to the offending stream and tenant in telemetry.

use lmi_core::DevicePtr;
use lmi_isa::instr::CmpOp;
use lmi_isa::reg::PredReg;
use lmi_isa::{abi, op, HintBits, Instruction, MemRef, Program, ProgramBuilder, Reg};
use lmi_runtime::{Runtime, RuntimeReport, SubmitError};
use lmi_sim::{GpuConfig, Launch, LaunchError};
use lmi_telemetry::Scope;

/// `buf[tid] += tid`, repeated `iters` times.
fn worker(name: &str, iters: u32) -> Program {
    let mut b = ProgramBuilder::new(name);
    b.push(Instruction::s2r(Reg(0), op::SpecialReg::TidX));
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 3));
    b.push(Instruction::mov(Reg(2), 0));
    let top = b.label();
    b.push(Instruction::ldg(Reg(8), MemRef::new(Reg(6), 0, 8)));
    b.push(Instruction::iadd3(Reg(8), Reg(8), Reg(0)));
    b.push(Instruction::stg(MemRef::new(Reg(6), 0, 8), Reg(8)));
    b.push(Instruction::iadd3(Reg(2), Reg(2), 1));
    b.push(Instruction::isetp(PredReg(0), Reg(2), CmpOp::Lt, iters as i32));
    b.branch_if(top, PredReg(0), false);
    b.push(Instruction::exit());
    b.build()
}

/// Submits the two-tenant, two-stream pipeline. With `chained`, stream B
/// waits on an event recorded after stream A's kernel — the back-to-back
/// serial baseline; otherwise both kernels are free to share the GPU.
fn two_stream_run(threads: usize, chained: bool) -> RuntimeReport {
    let mut rt = Runtime::new(GpuConfig::small().with_sim_threads(threads));
    let ta = rt.add_tenant(true);
    let tb = rt.add_tenant(true);
    let sa = rt.create_stream(ta).unwrap();
    let sb = rt.create_stream(tb).unwrap();
    let buf_a = rt.malloc(ta, 4096).unwrap();
    let buf_b = rt.malloc(tb, 4096).unwrap();
    rt.memcpy_h2d(sa, buf_a, &vec![10u64; 512]).unwrap();
    rt.memcpy_h2d(sb, buf_b, &vec![20u64; 512]).unwrap();
    rt.launch(sa, Launch::new(worker("wa", 256)).grid(4).block(64).param(buf_a)).unwrap();
    if chained {
        let ev = rt.create_event();
        rt.record_event(sa, ev).unwrap();
        rt.wait_event(sb, ev).unwrap();
    }
    rt.launch(sb, Launch::new(worker("wb", 256)).grid(4).block(64).param(buf_b)).unwrap();
    rt.synchronize().unwrap();
    rt.report().clone()
}

#[test]
fn concurrent_streams_beat_back_to_back_on_disjoint_partitions() {
    let concurrent = two_stream_run(1, false);
    let serial = two_stream_run(1, true);

    let (ka, kb) = (&concurrent.kernels[0], &concurrent.kernels[1]);
    assert!(
        ka.partition.end <= kb.partition.start || kb.partition.end <= ka.partition.start,
        "concurrent kernels must own disjoint SM partitions: {:?} vs {:?}",
        ka.partition,
        kb.partition
    );
    assert!(!ka.partition.is_empty() && !kb.partition.is_empty());
    assert!(
        ka.started_at < kb.completed_at && kb.started_at < ka.completed_at,
        "the two kernels must overlap in simulated time"
    );

    // "Measurably fewer": well beyond cycle-level noise.
    assert!(
        concurrent.total_cycles as f64 <= serial.total_cycles as f64 * 0.75,
        "concurrent {} vs serial {} cycles",
        concurrent.total_cycles,
        serial.total_cycles
    );

    // The serial baseline really is back-to-back.
    let (sa, sb) = (&serial.kernels[0], &serial.kernels[1]);
    assert!(sb.started_at >= sa.completed_at, "chained kernel starts after the event");
}

#[test]
fn per_kernel_stats_are_identical_across_sim_threads() {
    let reference = two_stream_run(1, false);
    for threads in [2, 8] {
        let other = two_stream_run(threads, false);
        assert_eq!(reference, other, "RuntimeReport diverged at {threads} threads");
        for (a, b) in reference.kernels.iter().zip(&other.kernels) {
            assert_eq!(a.stats, b.stats, "SimStats for {} diverged at {threads} threads", a.name);
        }
    }
}

#[test]
fn cross_tenant_oob_is_caught_and_attributed() {
    let mut rt = Runtime::new(GpuConfig::small());
    let alice = rt.add_tenant(true);
    let bob = rt.add_tenant(true);
    let s_alice = rt.create_stream(alice).unwrap();
    let s_bob = rt.create_stream(bob).unwrap();

    let buf_a = rt.malloc(alice, 4096).unwrap();
    let buf_b = rt.malloc(bob, 4096).unwrap();
    rt.memcpy_h2d(s_bob, buf_b, &[777]).unwrap();

    // Alice redirects her own pointer into Bob's arena via a marked add;
    // the delta arrives as a 64-bit launch parameter.
    let delta = DevicePtr::from_raw(buf_b).addr() - DevicePtr::from_raw(buf_a).addr();
    let mut b = ProgramBuilder::new("cross_tenant");
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::ldc(Reg(6), abi::LAUNCH_BANK, abi::param_offset(1), 8));
    b.push(Instruction::iadd64(Reg(4), Reg(4), Reg(6)).with_hints(HintBits::check_operand(0)));
    b.push(Instruction::mov(Reg(0), 0xBAD));
    b.push(Instruction::stg(MemRef::new(Reg(4), 0, 4), Reg(0)));
    b.push(Instruction::exit());
    rt.launch(s_alice, Launch::new(b.build()).grid(1).block(1).param(buf_a).param(delta)).unwrap();
    rt.synchronize().unwrap();

    let attack = rt.report().kernels.last().unwrap();
    assert_eq!(attack.stats.violations.len(), 1, "the cross-tenant store must fault");
    assert_eq!(attack.tenant, alice);
    assert_eq!(attack.stream, s_alice);
    assert_eq!(rt.read(buf_b, 0, 8), 777, "bob's memory is untouched");

    let c = rt.counters();
    assert_eq!(c.get(Scope::Stream(s_alice), "violations"), 1);
    assert_eq!(c.get(Scope::Tenant(alice), "violations"), 1);
    assert_eq!(c.get(Scope::Stream(s_bob), "violations"), 0);
    assert_eq!(c.get(Scope::Tenant(bob), "violations"), 0);
}

#[test]
fn unprotected_tenant_coexists_with_a_protected_one() {
    // A null-mechanism tenant shares the GPU with an LMI tenant; both
    // pipelines complete and only the protected tenant carries extents.
    let mut rt = Runtime::new(GpuConfig::small());
    let prot = rt.add_tenant(true);
    let raw = rt.add_tenant(false);
    let sp = rt.create_stream(prot).unwrap();
    let sr = rt.create_stream(raw).unwrap();
    let bp = rt.malloc(prot, 4096).unwrap();
    let br = rt.malloc(raw, 4096).unwrap();
    assert!(DevicePtr::from_raw(bp).extent() > 0, "protected pointer carries an extent");
    assert_eq!(DevicePtr::from_raw(br).extent(), 0, "unprotected pointer is a plain address");

    rt.memcpy_h2d(sp, bp, &vec![1u64; 64]).unwrap();
    rt.memcpy_h2d(sr, br, &vec![2u64; 64]).unwrap();
    rt.launch(sp, Launch::new(worker("wp", 4)).grid(1).block(64).param(bp)).unwrap();
    rt.launch(sr, Launch::new(worker("wr", 4)).grid(1).block(64).param(br)).unwrap();
    let hp = rt.memcpy_d2h(sp, bp, 512).unwrap();
    let hr = rt.memcpy_d2h(sr, br, 512).unwrap();
    rt.synchronize().unwrap();

    assert_eq!(rt.copy_result(hp).unwrap()[3], 1 + 4 * 3);
    assert_eq!(rt.copy_result(hr).unwrap()[3], 2 + 4 * 3);
    assert!(rt.report().kernels.iter().all(|k| k.stats.violations.is_empty()));
}

#[test]
fn oversized_launch_is_rejected_as_a_typed_error() {
    let mut rt = Runtime::new(GpuConfig::small());
    let t = rt.add_tenant(true);
    let s = rt.create_stream(t).unwrap();
    let cap = GpuConfig::small();
    let too_many = cap.num_sms * cap.max_warps_per_sm + 1;
    let err = rt
        .launch(s, Launch::new(worker("big", 1)).grid(too_many).block(32))
        .expect_err("launch beyond whole-GPU capacity must be rejected");
    match err {
        SubmitError::Launch(LaunchError::WarpCapacityExceeded { .. }) => {}
        other => panic!("expected WarpCapacityExceeded, got {other:?}"),
    }
    // The rejection is recorded, and the runtime stays usable.
    assert_eq!(rt.counters().get(Scope::Stream(s), "rejected"), 1);
    let buf = rt.malloc(t, 256).unwrap();
    rt.launch(s, Launch::new(worker("ok", 1)).grid(1).block(32).param(buf)).unwrap();
    rt.synchronize().unwrap();
    assert_eq!(rt.report().kernels.len(), 1);
}
