//! Dynamic workload validation: the synthetic benchmarks must *execute*
//! with the properties the paper's figures rest on, not just encode them
//! statically.

use lmi::alloc::AlignmentPolicy;
use lmi::baselines::GpuShield;
use lmi::isa::MemSpace;
use lmi::sim::trace::DynamicProfile;
use lmi::sim::{Gpu, GpuConfig, LmiMechanism, NullMechanism};
use lmi::workloads::{all_workloads, malloc_stress_workload, prepare, WorkloadSpec};

fn spec(name: &str) -> WorkloadSpec {
    all_workloads().into_iter().find(|w| w.name == name).unwrap()
}

fn run_baseline(spec: &WorkloadSpec) -> lmi::sim::SimStats {
    let prepared = prepare(spec, AlignmentPolicy::CudaDefault);
    let mut gpu = Gpu::new(GpuConfig::small());
    gpu.run(&prepared.launch, &mut NullMechanism)
}

/// Fig. 1: the executed region mix matches each spec within tolerance.
#[test]
fn executed_region_mix_matches_fig1_specs() {
    for name in ["bert", "lud_cuda", "needle", "hotspot", "nn"] {
        let w = spec(name);
        let scaled = w.scaled_down(2);
        let stats = run_baseline(&scaled);
        assert!(
            (stats.mem_ratio(MemSpace::Global) - w.global_frac).abs() < 0.08,
            "{name}: global {} vs {}",
            stats.mem_ratio(MemSpace::Global),
            w.global_frac
        );
        assert!((stats.mem_ratio(MemSpace::Shared) - w.shared_frac).abs() < 0.08, "{name}: shared");
    }
}

/// Fig. 1 call-outs, dynamically.
#[test]
fn fig1_callouts_hold_dynamically() {
    let bert = run_baseline(&spec("bert").scaled_down(2));
    assert!(bert.mem_ratio(MemSpace::Global) > 0.9);
    let needle = run_baseline(&spec("needle").scaled_down(2));
    assert!(needle.mem_ratio(MemSpace::Shared) > 0.8);
}

/// §XI-A: needle really thrashes GPUShield's per-warp RCache.
#[test]
fn needle_thrashes_the_rcache_dynamically() {
    let w = spec("needle");
    let prepared = prepare(&w, AlignmentPolicy::CudaDefault);
    let mut shield = GpuShield::new();
    for &(b, s) in &prepared.buffers {
        shield.register_buffer(b, s);
    }
    let mut gpu = Gpu::new(GpuConfig::small());
    let stats = gpu.run(&prepared.launch, &mut shield);
    assert!(stats.violations.is_empty());
    let lookups = shield.rcache_hits + shield.rcache_misses;
    assert!(lookups > 0);
    let warp_level_miss_share = shield.rcache_misses as f64 * 32.0 / lookups as f64;
    assert!(
        warp_level_miss_share > 0.3,
        "needle should miss on a large share of warp-level lookups: {warp_level_miss_share}"
    );
}

/// §X-B: gaussian's dynamic check:LDST ratio dwarfs swin's.
#[test]
fn dynamic_check_ratios_order_gaussian_above_swin() {
    let gaussian = run_baseline(&spec("gaussian").scaled_down(2));
    let swin = run_baseline(&spec("swin").scaled_down(2));
    let rg = DynamicProfile::check_to_ldst_ratio(&gaussian);
    let rs = DynamicProfile::check_to_ldst_ratio(&swin);
    assert!(rg > 2.0 * rs, "gaussian {rg} vs swin {rs}");
}

/// The abstract's scenario: thousands of threads allocating concurrently
/// on the device heap, fine-grained-checked at negligible cost.
#[test]
fn concurrent_heap_stress_is_clean_under_lmi() {
    let w = malloc_stress_workload();
    let prepared = prepare(&w, AlignmentPolicy::PowerOfTwo);
    let mut gpu = Gpu::with_heap_policy(GpuConfig::small(), AlignmentPolicy::PowerOfTwo);
    let mut mech = LmiMechanism::default_config();
    let stats = gpu.run(&prepared.launch, &mut mech);
    assert!(!stats.violated());
    assert!(stats.mallocs >= 4096, "thousands of device mallocs ran");
    assert_eq!(stats.mallocs, stats.frees);
    assert_eq!(gpu.heap().stats().live, 0, "everything returned to the heap");
    assert_eq!(mech.poisoned_count, 0);
}
