//! Integration tests of the software baselines: instrumented binaries must
//! preserve kernel semantics while paying their documented costs.

use lmi::baselines::{instrument_baggy, instrument_lmi_dbi, instrument_memcheck};
use lmi::core::{DevicePtr, PtrConfig};
use lmi::isa::instr::CmpOp;
use lmi::isa::reg::PredReg;
use lmi::isa::{abi, HintBits, Instruction, MemRef, Program, ProgramBuilder, Reg};
use lmi::mem::layout;
use lmi::sim::{Gpu, GpuConfig, Launch, NullMechanism};

/// A looped kernel writing `out[gid] = gid` plus pointer arithmetic — the
/// shape every instrumentation pass must leave semantically intact.
fn looped_kernel() -> Program {
    let mut b = ProgramBuilder::new("looped");
    b.push(Instruction::s2r(Reg(0), lmi::isa::op::SpecialReg::TidX));
    b.push(Instruction::ldc(Reg(4), abi::LAUNCH_BANK, abi::param_offset(0), 8));
    b.push(Instruction::mov(Reg(2), 0));
    let top = b.label();
    b.push(Instruction::lea64(Reg(6), Reg(4), Reg(0), 2).with_hints(HintBits::check_operand(0)));
    b.push(Instruction::stg(MemRef::new(Reg(6), 0, 4), Reg(0)));
    b.push(Instruction::iadd3(Reg(2), Reg(2), 1));
    b.push(Instruction::isetp(PredReg(0), Reg(2), CmpOp::Lt, 4));
    b.branch_if(top, PredReg(0), false);
    b.push(Instruction::exit());
    b.build()
}

fn run(program: Program) -> Gpu {
    let buf = DevicePtr::encode(layout::GLOBAL_BASE, 4096, &PtrConfig::default()).unwrap();
    let launch = Launch::new(program).grid(1).block(64).param(buf.raw());
    let mut gpu = Gpu::new(GpuConfig::small());
    let stats = gpu.run(&launch, &mut NullMechanism);
    assert!(!stats.violated());
    gpu
}

fn output_of(gpu: &Gpu) -> Vec<u64> {
    (0..64u64).map(|t| gpu.memory.read(layout::GLOBAL_BASE + t * 4, 4)).collect()
}

#[test]
fn baggy_instrumentation_preserves_semantics() {
    let original = looped_kernel();
    let reference = output_of(&run(original.clone()));
    let instrumented = instrument_baggy(&original);
    assert!(instrumented.len() > original.len());
    assert_eq!(output_of(&run(instrumented)), reference);
}

#[test]
fn dbi_instrumentation_preserves_semantics() {
    let original = looped_kernel();
    let reference = output_of(&run(original.clone()));
    for instrumented in [instrument_lmi_dbi(&original), instrument_memcheck(&original)] {
        assert_eq!(output_of(&run(instrumented)), reference);
    }
}

#[test]
fn instrumented_loops_still_iterate_correctly() {
    // The loop body's branch target remapping must keep the trip count at 4
    // — a wrong target would change the iteration count or hang.
    let original = looped_kernel();
    let instrumented = instrument_memcheck(&original);
    let buf = DevicePtr::encode(layout::GLOBAL_BASE, 4096, &PtrConfig::default()).unwrap();
    let launch = Launch::new(instrumented).grid(1).block(32).param(buf.raw());
    let mut gpu = Gpu::new(GpuConfig::small());
    let stats = gpu.run(&launch, &mut NullMechanism);
    // 32 lanes × 4 iterations × 1 STG = warp executes 4 warp-level STGs,
    // plus the injected stub's local traffic.
    assert_eq!(stats.mem_count(lmi::isa::MemSpace::Global), 4);
    assert!(stats.mem_count(lmi::isa::MemSpace::Local) > 0, "stub spills executed");
}

#[test]
fn instrumentation_cost_ordering_holds() {
    let original = looped_kernel();
    let baggy = instrument_baggy(&original);
    let memcheck = instrument_memcheck(&original);
    let lmi_dbi = instrument_lmi_dbi(&original);
    assert!(baggy.len() < memcheck.len(), "inline checks are far cheaper than DBI stubs");
    assert!(memcheck.len() < lmi_dbi.len(), "LMI-DBI instruments strictly more sites");
}
