//! # lmi — a Rust reproduction of *Let-Me-In* (HPCA 2025)
//!
//! LMI is a fine-grained GPU memory-safety mechanism: allocations are
//! rounded to powers of two, the size exponent ("extent") lives in the
//! upper 5 bits of each 64-bit pointer, a tiny Overflow Checking Unit next
//! to every integer ALU verifies compiler-marked pointer arithmetic, and an
//! Extent Checker in the load/store unit faults dereferences of poisoned or
//! freed pointers.
//!
//! This workspace implements the full system and every substrate the paper
//! evaluates it on:
//!
//! | crate | contents |
//! |---|---|
//! | `lmi_core` | pointer format, OCU, EC, temporal safety, liveness tracking, gate-level hardware model |
//! | `lmi_isa` | SASS-like ISA, 128-bit microcode with the A/S hint bits |
//! | `lmi_mem` | caches, DRAM, functional backing store |
//! | `lmi_sim` | cycle-level SIMT simulator with pluggable mechanisms |
//! | `lmi_alloc` | 2ⁿ-aligned allocators for every GPU memory type |
//! | `lmi_compiler` | kernel IR, the LMI pass, hint-bit codegen |
//! | `lmi_baselines` | GPUShield, Baggy Bounds, canary, cuCatch, DBI |
//! | `lmi_workloads` | the 28 synthetic Table V benchmarks |
//! | `lmi_security` | the 38 Table III violation test cases |
//!
//! ## Quickstart
//!
//! ```
//! use lmi::core::{DevicePtr, Ocu, ExtentChecker, PtrConfig};
//!
//! let cfg = PtrConfig::default();
//! let ptr = DevicePtr::encode(0x1000_0000, 1000, &cfg)?; // rounds to 1024
//! let ocu = Ocu::new(cfg);
//! let ec = ExtentChecker::new(cfg);
//!
//! // In-bounds arithmetic and access:
//! let (p, _) = ocu.check_marked(ptr.raw(), ptr.raw() + 512);
//! assert!(ec.check_access(p).is_ok());
//!
//! // Out-of-bounds arithmetic poisons; the dereference faults:
//! let (bad, _) = ocu.check_marked(ptr.raw(), ptr.raw() + 1024);
//! assert!(ec.check_access(bad).is_err());
//! # Ok::<(), lmi::core::PtrError>(())
//! ```
//!
//! See `examples/` for runnable end-to-end programs and `crates/bench` for
//! the figure/table regeneration harness.

pub use lmi_alloc as alloc;
pub use lmi_baselines as baselines;
pub use lmi_compiler as compiler;
pub use lmi_conformance as conformance;
pub use lmi_core as core;
pub use lmi_isa as isa;
pub use lmi_mem as mem;
pub use lmi_runtime as runtime;
pub use lmi_security as security;
pub use lmi_sim as sim;
pub use lmi_telemetry as telemetry;
pub use lmi_workloads as workloads;
